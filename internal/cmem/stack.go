package cmem

// Stack simulates the process stack. The wrapper's Libsafe-style check
// (paper §5.1) needs to know, for a destination buffer on the stack,
// the boundary of the stack frame that contains it: a C library function
// must never write past the frame of the caller that owns the buffer,
// because that would smash a saved return address.
//
// Frames grow downward from stackTop. Each frame records its extent; a
// buffer "in" a frame may safely extend only to the frame's base (the
// high end), where the saved frame pointer and return address live.
type Stack struct {
	mem    *Memory
	low    Addr // lowest mapped stack address
	sp     Addr // current stack pointer (grows down)
	frames []Frame
}

// Frame is one activation record on the simulated stack.
type Frame struct {
	Base Addr // high end: saved return address sits at Base..Base+frameLinkSize
	SP   Addr // low end while the frame is active
}

// frameLinkSize models the saved frame pointer + return address.
const frameLinkSize = 16

func newStack(m *Memory) *Stack {
	low := stackTop - Addr(stackSize)
	m.Map(low, stackSize, ProtRW)
	return &Stack{mem: m, low: low, sp: stackTop}
}

func (s *Stack) clone(m *Memory) *Stack {
	c := &Stack{mem: m, low: s.low, sp: s.sp}
	c.frames = append(c.frames, s.frames...)
	return c
}

// PushFrame enters a new activation record reserving size bytes of
// locals and returns the frame. The frame link (simulated return
// address) occupies the top frameLinkSize bytes.
func (s *Stack) PushFrame(size int) Frame {
	base := s.sp
	s.sp -= Addr(size + frameLinkSize)
	f := Frame{Base: base - frameLinkSize, SP: s.sp}
	s.frames = append(s.frames, f)
	return f
}

// PopFrame leaves the most recent activation record.
func (s *Stack) PopFrame() {
	if len(s.frames) == 0 {
		return
	}
	f := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	s.sp = f.Base + frameLinkSize
}

// Alloca reserves n bytes of locals in the current frame and returns
// their address. It panics if no frame is active, which indicates a
// bug in the simulation driver, not in simulated code.
func (s *Stack) Alloca(n int) Addr {
	if len(s.frames) == 0 {
		s.PushFrame(0)
	}
	f := &s.frames[len(s.frames)-1]
	s.sp -= Addr(n)
	// Keep allocations 8-byte aligned like a real compiler would.
	s.sp &^= 7
	f.SP = s.sp
	return s.sp
}

// Contains reports whether addr lies within the mapped stack region.
func (s *Stack) Contains(addr Addr) bool {
	return addr >= s.low && addr < stackTop
}

// FrameLimit returns, for a buffer starting at addr on the stack, the
// number of bytes that can be written before reaching the frame link of
// the innermost frame containing addr. ok is false when addr is on the
// stack but not inside any recorded frame's locals.
func (s *Stack) FrameLimit(addr Addr) (limit int, ok bool) {
	for i := len(s.frames) - 1; i >= 0; i-- {
		f := s.frames[i]
		if addr >= f.SP && addr < f.Base {
			return int(f.Base - addr), true
		}
	}
	return 0, false
}

// Depth returns the number of active frames.
func (s *Stack) Depth() int { return len(s.frames) }

// Package cmem simulates the paged, protected memory of a C process.
//
// The HEALERS fault injector depends on two hardware facilities: per-page
// memory protection (so that an access one byte past an allocation traps)
// and faulting addresses (so the injector can attribute a segmentation
// fault to the test-case generator that owns the region). Package cmem
// provides both for a simulated 64-bit address space: pages can be mapped
// with independent read/write protection, every access is checked, and a
// failed access reports the exact faulting address and access kind.
//
// All methods return a *Fault on bad accesses instead of panicking; the
// process layer (package csim) converts faults into simulated signals.
package cmem

import (
	"errors"
	"fmt"
)

// PageSize is the size in bytes of a simulated memory page.
const PageSize = 4096

// Addr is a simulated virtual address.
type Addr uint64

// PageBase returns the address of the start of the page containing a.
func (a Addr) PageBase() Addr { return a &^ (PageSize - 1) }

// Prot is a page protection bitmask.
type Prot uint8

// Page protections. A page may be mapped with no access at all
// (a guard page), read-only, write-only, or read-write.
const (
	ProtNone Prot = 0
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtRW = ProtRead | ProtWrite
)

func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtWrite:
		return "-w-"
	case ProtRW:
		return "rw-"
	}
	return fmt.Sprintf("Prot(%d)", uint8(p))
}

// Access is the kind of memory access that caused a fault.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota + 1
	AccessWrite
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	}
	return fmt.Sprintf("Access(%d)", uint8(a))
}

// Fault describes a memory access violation: a simulated SIGSEGV.
// It records the exact faulting address, which the adaptive fault
// injector uses to find the test-case generator owning the region.
type Fault struct {
	Addr   Addr   // faulting address
	Access Access // attempted access kind
	Mapped bool   // true if the page was mapped but protection denied access
}

var _ error = (*Fault)(nil)

func (f *Fault) Error() string {
	state := "unmapped"
	if f.Mapped {
		state = "protected"
	}
	return fmt.Sprintf("segmentation fault: %v of %s address %#x", f.Access, state, uint64(f.Addr))
}

// ErrNoMemory is returned when the simulated address space is exhausted.
var ErrNoMemory = errors.New("cmem: out of simulated memory")

type page struct {
	prot Prot
	data [PageSize]byte
}

// Memory is a simulated address space. The zero value is not usable;
// call New. Memory is not safe for concurrent use; a simulated process
// owns its memory exclusively.
type Memory struct {
	pages map[Addr]*page // keyed by page base address

	// Region cursors for the distinct address-space areas. Keeping the
	// areas far apart mirrors a real process layout and guarantees that
	// heap, mmap and stack allocations never collide.
	heapCursor Addr
	mmapCursor Addr

	heap *heapState

	stack *Stack

	// Single-entry page cache for the byte accessors: simulated C code
	// is dominated by byte-at-a-time loops over one region, and the
	// map lookup per byte would dominate the whole injection campaign.
	cacheBase Addr
	cachePage *page
}

// Address-space layout constants. The null page (and everything below
// heapBase) is never mapped, so small integers used as pointers fault.
const (
	heapBase Addr = 0x0000_1000_0000
	mmapBase Addr = 0x2000_0000_0000
	stackTop Addr = 0x7fff_ffff_f000
	// stackSize is deliberately small: the fault injector forks a child
	// per test case and Clone copies every mapped page, so a lean stack
	// keeps millions of forks affordable.
	stackSize = 32 << 10
)

// New returns an empty simulated address space with a mapped stack.
func New() *Memory {
	m := &Memory{
		pages:      make(map[Addr]*page),
		heapCursor: heapBase,
		mmapCursor: mmapBase,
	}
	m.heap = newHeapState()
	m.stack = newStack(m)
	return m
}

// Clone returns a deep copy of the address space. The fault injector
// forks a fresh child for every call of the function under test; Clone
// is the memory half of that fork.
func (m *Memory) Clone() *Memory {
	c := &Memory{
		pages:      make(map[Addr]*page, len(m.pages)),
		heapCursor: m.heapCursor,
		mmapCursor: m.mmapCursor,
	}
	for base, pg := range m.pages {
		cp := *pg
		c.pages[base] = &cp
	}
	c.heap = m.heap.clone()
	c.stack = m.stack.clone(c)
	return c
}

// Map maps n bytes starting at the page containing addr with protection
// prot. It rounds the region outward to page boundaries. Mapping an
// already-mapped page resets its protection but preserves its contents.
func (m *Memory) Map(addr Addr, n int, prot Prot) {
	if n <= 0 {
		return
	}
	m.cachePage = nil
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		if pg, ok := m.pages[base]; ok {
			pg.prot = prot
		} else {
			m.pages[base] = &page{prot: prot}
		}
		if base == last {
			break
		}
	}
}

// Unmap removes every page overlapping [addr, addr+n). Subsequent
// accesses to the region fault as unmapped.
func (m *Memory) Unmap(addr Addr, n int) {
	if n <= 0 {
		return
	}
	m.cachePage = nil
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		delete(m.pages, base)
		if base == last {
			break
		}
	}
}

// Protect changes the protection of every page overlapping [addr, addr+n).
// Unmapped pages in the range are left unmapped.
func (m *Memory) Protect(addr Addr, n int, prot Prot) {
	if n <= 0 {
		return
	}
	m.cachePage = nil
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		if pg, ok := m.pages[base]; ok {
			pg.prot = prot
		}
		if base == last {
			break
		}
	}
}

// ProtAt reports the protection of the page containing addr and whether
// the page is mapped at all.
func (m *Memory) ProtAt(addr Addr) (Prot, bool) {
	pg, ok := m.pages[addr.PageBase()]
	if !ok {
		return ProtNone, false
	}
	return pg.prot, true
}

// MmapRegion reserves and maps a fresh region of n bytes (page rounded)
// in the mmap area and returns its base address. The region is preceded
// and followed by permanently unmapped guard gaps so that out-of-bounds
// accesses fault with an address attributable to this region.
func (m *Memory) MmapRegion(n int, prot Prot) (Addr, error) {
	if n < 0 {
		return 0, fmt.Errorf("cmem: negative mmap size %d", n)
	}
	pages := (n + PageSize - 1) / PageSize
	if pages == 0 {
		pages = 1
	}
	if m.mmapCursor+Addr((pages+2)*PageSize) < m.mmapCursor {
		return 0, ErrNoMemory
	}
	base := m.mmapCursor + PageSize // leading guard gap
	m.Map(base, pages*PageSize, prot)
	m.mmapCursor = base + Addr(pages*PageSize) + PageSize // trailing guard gap
	return base, nil
}

func (m *Memory) check(addr Addr, n int, access Access) *Fault {
	if n <= 0 {
		return nil
	}
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		pg, ok := m.pages[base]
		at := base
		if at < addr {
			at = addr
		}
		if !ok {
			return &Fault{Addr: at, Access: access}
		}
		switch access {
		case AccessRead:
			if pg.prot&ProtRead == 0 {
				return &Fault{Addr: at, Access: access, Mapped: true}
			}
		case AccessWrite:
			if pg.prot&ProtWrite == 0 {
				return &Fault{Addr: at, Access: access, Mapped: true}
			}
		}
		if base == last {
			break
		}
	}
	return nil
}

// Read copies n bytes starting at addr into a fresh slice.
func (m *Memory) Read(addr Addr, n int) ([]byte, *Fault) {
	if f := m.check(addr, n, AccessRead); f != nil {
		return nil, f
	}
	out := make([]byte, n)
	m.copyOut(addr, out)
	return out, nil
}

// Write copies data into memory at addr.
func (m *Memory) Write(addr Addr, data []byte) *Fault {
	if f := m.check(addr, len(data), AccessWrite); f != nil {
		return f
	}
	m.copyIn(addr, data)
	return nil
}

// copyOut copies from memory into out; all pages must be mapped.
func (m *Memory) copyOut(addr Addr, out []byte) {
	for len(out) > 0 {
		pg := m.pages[addr.PageBase()]
		off := int(addr - addr.PageBase())
		n := copy(out, pg.data[off:])
		out = out[n:]
		addr += Addr(n)
	}
}

// copyIn copies data into memory; all pages must be mapped.
func (m *Memory) copyIn(addr Addr, data []byte) {
	for len(data) > 0 {
		pg := m.pages[addr.PageBase()]
		off := int(addr - addr.PageBase())
		n := copy(pg.data[off:], data)
		data = data[n:]
		addr += Addr(n)
	}
}

// pageFor resolves the page containing addr through the single-entry
// cache.
func (m *Memory) pageFor(addr Addr) *page {
	base := addr.PageBase()
	if m.cachePage != nil && m.cacheBase == base {
		return m.cachePage
	}
	pg := m.pages[base]
	if pg != nil {
		m.cacheBase, m.cachePage = base, pg
	}
	return pg
}

// LoadByte reads a single byte.
func (m *Memory) LoadByte(addr Addr) (byte, *Fault) {
	pg := m.pageFor(addr)
	if pg == nil {
		return 0, &Fault{Addr: addr, Access: AccessRead}
	}
	if pg.prot&ProtRead == 0 {
		return 0, &Fault{Addr: addr, Access: AccessRead, Mapped: true}
	}
	return pg.data[addr&(PageSize-1)], nil
}

// StoreByte writes a single byte.
func (m *Memory) StoreByte(addr Addr, b byte) *Fault {
	pg := m.pageFor(addr)
	if pg == nil {
		return &Fault{Addr: addr, Access: AccessWrite}
	}
	if pg.prot&ProtWrite == 0 {
		return &Fault{Addr: addr, Access: AccessWrite, Mapped: true}
	}
	pg.data[addr&(PageSize-1)] = b
	return nil
}

// ReadU16 reads a little-endian 16-bit value.
func (m *Memory) ReadU16(addr Addr) (uint16, *Fault) {
	b, f := m.Read(addr, 2)
	if f != nil {
		return 0, f
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

// ReadU32 reads a little-endian 32-bit value.
func (m *Memory) ReadU32(addr Addr) (uint32, *Fault) {
	b, f := m.Read(addr, 4)
	if f != nil {
		return 0, f
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// ReadU64 reads a little-endian 64-bit value.
func (m *Memory) ReadU64(addr Addr) (uint64, *Fault) {
	b, f := m.Read(addr, 8)
	if f != nil {
		return 0, f
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteU16 writes a little-endian 16-bit value.
func (m *Memory) WriteU16(addr Addr, v uint16) *Fault {
	return m.Write(addr, []byte{byte(v), byte(v >> 8)})
}

// WriteU32 writes a little-endian 32-bit value.
func (m *Memory) WriteU32(addr Addr, v uint32) *Fault {
	return m.Write(addr, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// WriteU64 writes a little-endian 64-bit value.
func (m *Memory) WriteU64(addr Addr, v uint64) *Fault {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return m.Write(addr, b)
}

// CString reads a NUL-terminated string starting at addr. Reading
// proceeds byte by byte so that an unterminated string in a bounded
// region faults at exactly the first inaccessible byte, the behaviour
// real C string functions exhibit.
func (m *Memory) CString(addr Addr) (string, *Fault) {
	var buf []byte
	for a := addr; ; a++ {
		b, f := m.LoadByte(a)
		if f != nil {
			return "", f
		}
		if b == 0 {
			return string(buf), nil
		}
		buf = append(buf, b)
		if len(buf) > 1<<20 {
			// A terminator must appear within the mapped region; a
			// megabyte without one means the simulation set up a
			// pathological string. Treat as a fault at the cursor.
			return "", &Fault{Addr: a, Access: AccessRead, Mapped: true}
		}
	}
}

// WriteCString writes s followed by a NUL terminator at addr.
func (m *Memory) WriteCString(addr Addr, s string) *Fault {
	b := make([]byte, len(s)+1)
	copy(b, s)
	return m.Write(addr, b)
}

// Stack returns the simulated stack of this address space.
func (m *Memory) Stack() *Stack { return m.stack }

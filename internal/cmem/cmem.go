// Package cmem simulates the paged, protected memory of a C process.
//
// The HEALERS fault injector depends on two hardware facilities: per-page
// memory protection (so that an access one byte past an allocation traps)
// and faulting addresses (so the injector can attribute a segmentation
// fault to the test-case generator that owns the region). Package cmem
// provides both for a simulated 64-bit address space: pages can be mapped
// with independent read/write protection, every access is checked, and a
// failed access reports the exact faulting address and access kind.
//
// Forking is copy-on-write at two granularities. Pages: the first
// mutation of a shared page (a store, a protection change, a re-map)
// copies that page. Page tables: Clone freezes the parent's private
// pages into an immutable, refcounted layer and hands the child the
// layer list — O(layers), not O(pages), so forking a large address
// space costs the same as forking a small one. A Memory is its layer
// stack (shared, frozen) plus a private delta map; lookups probe the
// delta first, then the layers top-down. Read paths are strictly
// side-effect-free, and Clone serializes its internal freeze, which
// makes a Memory safe to Clone concurrently from several goroutines as
// long as nobody mutates it — the property the parallel campaign
// schedulers rely on to fork worker templates without serializing.
// Freeze a template explicitly before sharing it to make concurrent
// Clones entirely write-free.
//
// All methods return a *Fault on bad accesses instead of panicking; the
// process layer (package csim) converts faults into simulated signals.
package cmem

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the size in bytes of a simulated memory page.
const PageSize = 4096

// Addr is a simulated virtual address.
type Addr uint64

// PageBase returns the address of the start of the page containing a.
func (a Addr) PageBase() Addr { return a &^ (PageSize - 1) }

// Prot is a page protection bitmask.
type Prot uint8

// Page protections. A page may be mapped with no access at all
// (a guard page), read-only, write-only, or read-write.
const (
	ProtNone Prot = 0
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtRW = ProtRead | ProtWrite
)

func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtWrite:
		return "-w-"
	case ProtRW:
		return "rw-"
	}
	return fmt.Sprintf("Prot(%d)", uint8(p))
}

// Access is the kind of memory access that caused a fault.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota + 1
	AccessWrite
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	}
	return fmt.Sprintf("Access(%d)", uint8(a))
}

// Fault describes a memory access violation: a simulated SIGSEGV.
// It records the exact faulting address, which the adaptive fault
// injector uses to find the test-case generator owning the region.
type Fault struct {
	Addr   Addr   // faulting address
	Access Access // attempted access kind
	Mapped bool   // true if the page was mapped but protection denied access
}

var _ error = (*Fault)(nil)

func (f *Fault) Error() string {
	state := "unmapped"
	if f.Mapped {
		state = "protected"
	}
	return fmt.Sprintf("segmentation fault: %v of %s address %#x", f.Access, state, uint64(f.Addr))
}

// ErrNoMemory is returned when the simulated address space is exhausted.
var ErrNoMemory = errors.New("cmem: out of simulated memory")

// page is one 4 KiB unit of simulated memory. Pages are shared across
// forked address spaces through frozen layers; a page sits in exactly
// one private delta map (mutable, exclusively owned) or one layer
// (immutable, copied on write), so refs stays 1 and exists for pool
// hygiene: release returns the page to its shard exactly once, from
// whichever container dies last. The refcount is atomic because
// sibling forks release layer pages concurrently; the header padding
// keeps that hot word on its own cache line, so releases never
// false-share with the payload bytes a sibling is copying.
type page struct {
	prot  Prot
	_     [3]byte
	shard uint32 // pool shard this page returns to on release
	refs  atomic.Int32
	_     [52]byte // pad the header to one cache line
	data  [PageSize]byte
}

// PoolShards is the number of independent page-pool shards. Each shard
// has its own sync.Pool and its own counter cache line; a Memory is
// pinned to one shard at New and every Memory cloned from it inherits
// the pin, so one campaign's fork tree recycles pages through a single
// shard while concurrent campaigns (parallel workers build one template
// per function) spread across all of them.
const PoolShards = 8

const shardMask = PoolShards - 1

// poolShard is one shard of the page pool: a freelist plus its traffic
// counters, padded so neighbouring shards never share a cache line.
type poolShard struct {
	pool   sync.Pool
	gets   atomic.Int64
	puts   atomic.Int64
	misses atomic.Int64
	_      [64]byte
}

// pageShards recycles page buffers: every fork that diverges copies a
// few pages and then discards them when its experiment ends, so a
// campaign would otherwise churn millions of 4 KiB allocations through
// the GC.
var pageShards [PoolShards]poolShard

// nextShard round-robins fresh address spaces across the pool shards.
var nextShard atomic.Uint32

// PoolShardCounts is a snapshot of one pool shard's traffic: pages
// taken from the shard, pages returned to it, and gets that missed the
// freelist and allocated.
type PoolShardCounts struct {
	Gets   int64
	Puts   int64
	Misses int64
}

// PoolCounts snapshots every shard's counters, index == shard id. The
// counters are process-global and monotonic; exposure layers publish
// them as per-shard gauges.
func PoolCounts() [PoolShards]PoolShardCounts {
	var out [PoolShards]PoolShardCounts
	for i := range pageShards {
		s := &pageShards[i]
		out[i] = PoolShardCounts{Gets: s.gets.Load(), Puts: s.puts.Load(), Misses: s.misses.Load()}
	}
	return out
}

// getPage takes a page buffer from the given shard, allocating on a
// freelist miss. The returned page remembers its shard so release puts
// it back where it came from.
func getPage(shard uint32) *page {
	s := &pageShards[shard&shardMask]
	s.gets.Add(1)
	v := s.pool.Get()
	if v == nil {
		s.misses.Add(1)
		pg := new(page)
		pg.shard = shard & shardMask
		return pg
	}
	return v.(*page)
}

// newPage returns an exclusively owned, zeroed page. Pooled pages carry
// the data of their previous life and must be cleared: freshly mapped
// simulated memory reads as zero.
func newPage(prot Prot, shard uint32) *page {
	pg := getPage(shard)
	pg.prot = prot
	pg.data = [PageSize]byte{}
	pg.refs.Store(1)
	return pg
}

// copyOf returns an exclusively owned copy of src, drawn from the
// writing Memory's shard. No clearing is needed: the whole payload is
// overwritten.
func copyOf(src *page, shard uint32) *page {
	pg := getPage(shard)
	pg.prot = src.prot
	pg.data = src.data
	pg.refs.Store(1)
	return pg
}

// release drops one reference; the last referent returns the page to
// its shard. An exclusively owned page (refs == 1) skips the atomic
// decrement entirely — no sibling can race a load that observes 1,
// because observing 1 proves there is no sibling.
func (pg *page) release() {
	if pg.refs.Load() == 1 || pg.refs.Add(-1) == 0 {
		s := &pageShards[pg.shard&shardMask]
		s.puts.Add(1)
		s.pool.Put(pg)
	}
}

// ForkStats counts page sharing across one fork tree. Every Memory
// cloned (directly or transitively) from the same root shares one
// ForkStats, so a campaign can report how much copying its forks
// avoided. All counters are atomic: sibling forks diverge concurrently.
type ForkStats struct {
	forks       atomic.Int64
	pagesShared atomic.Int64
	pagesCopied atomic.Int64
}

// ForkCounts is a point-in-time snapshot of a fork tree's counters.
type ForkCounts struct {
	// Forks is the number of Clone calls in the tree.
	Forks int64
	// PagesShared counts page-table entries forked by reference — each
	// one a 4 KiB copy the eager clone would have performed up front.
	PagesShared int64
	// PagesCopied counts copy-on-write copies actually performed when a
	// fork diverged.
	PagesCopied int64
}

// Snapshot reads the counters.
func (s *ForkStats) Snapshot() ForkCounts {
	return ForkCounts{
		Forks:       s.forks.Load(),
		PagesShared: s.pagesShared.Load(),
		PagesCopied: s.pagesCopied.Load(),
	}
}

// BytesAvoided is the copying the fork tree skipped: pages shared at
// fork time minus the ones later copied on write, in bytes.
func (c ForkCounts) BytesAvoided() int64 {
	return (c.PagesShared - c.PagesCopied) * PageSize
}

// layer is one frozen stratum of a forked address space: an immutable
// page map shared by reference between every Memory whose history
// includes it. A nil entry is a tombstone — the page was unmapped in
// this stratum, shadowing any mapping in the layers below. refs counts
// the Memories referencing the layer; the last Release returns the
// layer's pages to the pool.
type layer struct {
	pages map[Addr]*page
	live  int // non-tombstone entries, for sharing stats
	refs  atomic.Int32
}

// Memory is a simulated address space. The zero value is not usable;
// call New. A Memory is owned by one goroutine: mutating methods are
// not safe for concurrent use. Read-only methods perform no writes to
// shared state, and Clone serializes its freeze step, so concurrent
// Clones of an otherwise-idle Memory are safe — forked children then
// diverge under their exclusive owners via copy-on-write. Reads
// concurrent with the Memory's *first* Clone race against the freeze;
// call Freeze once before sharing a template across goroutines and
// every subsequent Clone is write-free.
type Memory struct {
	// layers is the frozen history, bottom-up: entries in later layers
	// shadow earlier ones. own is the private delta on top — the only
	// map this Memory may write. Pages in own are exclusively owned
	// (refs == 1); pages in layers are immutable and copied on write.
	layers []*layer
	own    map[Addr]*page

	// cloneMu serializes the lazy freeze inside Clone so sibling
	// goroutines may fork one template concurrently.
	cloneMu sync.Mutex

	// Region cursors for the distinct address-space areas. Keeping the
	// areas far apart mirrors a real process layout and guarantees that
	// heap, mmap and stack allocations never collide.
	heapCursor Addr
	mmapCursor Addr

	heap *heapState

	stack *Stack

	// stats is shared by every Memory in this fork tree.
	stats *ForkStats

	// shard pins this address space (and, via Clone inheritance, its
	// whole fork tree) to one page-pool shard.
	shard uint32

	// TraceID and SpanID identify the causal span that owns this address
	// space (internal/obs span IDs, kept as plain integers so cmem stays
	// dependency-free). Clone inherits them, which is how a trace crosses
	// the fork boundary: a COW child is attributable to the span that
	// forked its template without any side channel.
	TraceID uint64
	SpanID  uint64
}

// Address-space layout constants. The null page (and everything below
// heapBase) is never mapped, so small integers used as pointers fault.
const (
	heapBase Addr = 0x0000_1000_0000
	mmapBase Addr = 0x2000_0000_0000
	stackTop Addr = 0x7fff_ffff_f000
	// stackSize is deliberately small: even with copy-on-write forking
	// every mapped page costs a table entry and a refcount per fork, so
	// a lean stack keeps millions of forks affordable.
	stackSize = 32 << 10
)

// New returns an empty simulated address space with a mapped stack.
func New() *Memory {
	m := &Memory{
		own:        make(map[Addr]*page),
		heapCursor: heapBase,
		mmapCursor: mmapBase,
		stats:      &ForkStats{},
		shard:      nextShard.Add(1) & shardMask,
	}
	m.heap = newHeapState()
	m.stack = newStack(m)
	return m
}

// lookup resolves the page containing base: the private delta first,
// then the frozen layers top-down. A nil result means unmapped —
// either never mapped or shadowed by a tombstone.
func (m *Memory) lookup(base Addr) *page {
	if pg, ok := m.own[base]; ok {
		return pg
	}
	for i := len(m.layers) - 1; i >= 0; i-- {
		if pg, ok := m.layers[i].pages[base]; ok {
			return pg
		}
	}
	return nil
}

// inLayers reports whether any frozen layer has an entry for base
// (tombstones included — they shadow like mappings do).
func (m *Memory) inLayers(base Addr) bool {
	for i := len(m.layers) - 1; i >= 0; i-- {
		if _, ok := m.layers[i].pages[base]; ok {
			return true
		}
	}
	return false
}

// forEachPage visits every mapped page, with own entries and later
// layers shadowing earlier ones.
func (m *Memory) forEachPage(fn func(base Addr, pg *page)) {
	seen := make(map[Addr]bool, len(m.own))
	visit := func(base Addr, pg *page) {
		if seen[base] {
			return
		}
		seen[base] = true
		if pg != nil {
			fn(base, pg)
		}
	}
	for base, pg := range m.own {
		visit(base, pg)
	}
	for i := len(m.layers) - 1; i >= 0; i-- {
		for base, pg := range m.layers[i].pages {
			visit(base, pg)
		}
	}
}

// Freeze seals the Memory's private pages into a new immutable layer.
// After Freeze, Clone performs no writes at all, so a fork template can
// be cloned from many goroutines while others read it. Freezing is
// idempotent and happens implicitly on the first Clone.
func (m *Memory) Freeze() {
	m.cloneMu.Lock()
	m.freezeLocked()
	m.cloneMu.Unlock()
}

func (m *Memory) freezeLocked() {
	if len(m.own) == 0 {
		return
	}
	l := &layer{pages: m.own}
	for _, pg := range m.own {
		if pg != nil {
			l.live++
		}
	}
	l.refs.Store(1)
	m.layers = append(m.layers, l)
	m.own = make(map[Addr]*page)
}

// Clone returns a copy-on-write fork of the address space. The fault
// injector forks a fresh child for every call of the function under
// test; Clone is the memory half of that fork. The parent's private
// pages are frozen into a shared layer (once — repeated Clones reuse
// it) and the child starts as the layer stack plus an empty delta, so
// a fork costs O(layers), independent of the address-space size.
// Either side's first mutation of a shared page copies that page into
// its delta.
//
// Clone serializes the freeze internally, so several goroutines may
// Clone the same Memory concurrently (the scheduler's worker-template
// fork); concurrency with mutations of the parent remains undefined.
func (m *Memory) Clone() *Memory {
	m.cloneMu.Lock()
	m.freezeLocked()
	layers := m.layers
	m.cloneMu.Unlock()
	c := &Memory{
		layers:     append(make([]*layer, 0, len(layers)+1), layers...),
		own:        make(map[Addr]*page),
		heapCursor: m.heapCursor,
		mmapCursor: m.mmapCursor,
		stats:      m.stats,
		shard:      m.shard,
		TraceID:    m.TraceID,
		SpanID:     m.SpanID,
	}
	shared := int64(0)
	for _, l := range layers {
		l.refs.Add(1)
		shared += int64(l.live)
	}
	c.heap = m.heap.clone()
	c.stack = m.stack.clone(c)
	m.stats.forks.Add(1)
	m.stats.pagesShared.Add(shared)
	return c
}

// CloneEager returns a deep copy sharing no pages or layers: the
// pre-COW fork, kept as the reference implementation for the
// differential tests and the eager-vs-COW benchmarks. It does not
// count toward ForkStats.
func (m *Memory) CloneEager() *Memory {
	c := &Memory{
		own:        make(map[Addr]*page),
		heapCursor: m.heapCursor,
		mmapCursor: m.mmapCursor,
		stats:      m.stats,
		shard:      m.shard,
		TraceID:    m.TraceID,
		SpanID:     m.SpanID,
	}
	m.forEachPage(func(base Addr, pg *page) {
		c.own[base] = copyOf(pg, m.shard)
	})
	c.heap = m.heap.clone()
	c.stack = m.stack.clone(c)
	return c
}

// Release drops the address space's pages and layer references,
// returning pages nothing else references to the page pool. The fault
// injector calls it when a forked child's experiment completes; the
// Memory must not be used afterwards (mutations panic, accesses fault
// as unmapped).
func (m *Memory) Release() {
	for _, pg := range m.own {
		if pg != nil {
			pg.release()
		}
	}
	m.own = nil
	for _, l := range m.layers {
		if l.refs.Add(-1) == 0 {
			for _, pg := range l.pages {
				if pg != nil {
					pg.release()
				}
			}
		}
	}
	m.layers = nil
}

// ForkStats returns the sharing counters of this Memory's fork tree.
func (m *Memory) ForkStats() *ForkStats { return m.stats }

// ensureOwned returns a page for base that this Memory owns
// exclusively, copying a layer-shared page into the delta first if
// needed. Every mutation path funnels through it — the copy-on-write
// fault handler. pg must be the result of lookup(base).
func (m *Memory) ensureOwned(base Addr, pg *page) *page {
	if opg, ok := m.own[base]; ok {
		return opg
	}
	np := copyOf(pg, m.shard)
	m.own[base] = np
	m.stats.pagesCopied.Add(1)
	return np
}

// Map maps n bytes starting at the page containing addr with protection
// prot. It rounds the region outward to page boundaries. Mapping an
// already-mapped page resets its protection but preserves its contents.
func (m *Memory) Map(addr Addr, n int, prot Prot) {
	if n <= 0 {
		return
	}
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		if pg := m.lookup(base); pg != nil {
			if pg.prot != prot {
				m.ensureOwned(base, pg).prot = prot
			}
		} else {
			m.own[base] = newPage(prot, m.shard)
		}
		if base == last {
			break
		}
	}
}

// Unmap removes every page overlapping [addr, addr+n). Subsequent
// accesses to the region fault as unmapped.
func (m *Memory) Unmap(addr Addr, n int) {
	if n <= 0 {
		return
	}
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		if pg, ok := m.own[base]; ok && pg != nil {
			pg.release()
		}
		if m.inLayers(base) {
			// A tombstone shadows the frozen mapping below.
			m.own[base] = nil
		} else {
			delete(m.own, base)
		}
		if base == last {
			break
		}
	}
}

// Protect changes the protection of every page overlapping [addr, addr+n).
// Unmapped pages in the range are left unmapped. Changing a shared
// page's protection copies it: protection state lives in the page, and
// the sibling forks must keep seeing the old protection.
func (m *Memory) Protect(addr Addr, n int, prot Prot) {
	if n <= 0 {
		return
	}
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		if pg := m.lookup(base); pg != nil && pg.prot != prot {
			m.ensureOwned(base, pg).prot = prot
		}
		if base == last {
			break
		}
	}
}

// ProtAt reports the protection of the page containing addr and whether
// the page is mapped at all.
func (m *Memory) ProtAt(addr Addr) (Prot, bool) {
	pg := m.lookup(addr.PageBase())
	if pg == nil {
		return ProtNone, false
	}
	return pg.prot, true
}

// MmapRegion reserves and maps a fresh region of n bytes (page rounded)
// in the mmap area and returns its base address. The region is preceded
// and followed by permanently unmapped guard gaps so that out-of-bounds
// accesses fault with an address attributable to this region.
func (m *Memory) MmapRegion(n int, prot Prot) (Addr, error) {
	if n < 0 {
		return 0, fmt.Errorf("cmem: negative mmap size %d", n)
	}
	pages := (n + PageSize - 1) / PageSize
	if pages == 0 {
		pages = 1
	}
	if m.mmapCursor+Addr((pages+2)*PageSize) < m.mmapCursor {
		return 0, ErrNoMemory
	}
	base := m.mmapCursor + PageSize // leading guard gap
	m.Map(base, pages*PageSize, prot)
	m.mmapCursor = base + Addr(pages*PageSize) + PageSize // trailing guard gap
	return base, nil
}

func (m *Memory) check(addr Addr, n int, access Access) *Fault {
	if n <= 0 {
		return nil
	}
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		pg := m.lookup(base)
		at := base
		if at < addr {
			at = addr
		}
		if pg == nil {
			return &Fault{Addr: at, Access: access}
		}
		switch access {
		case AccessRead:
			if pg.prot&ProtRead == 0 {
				return &Fault{Addr: at, Access: access, Mapped: true}
			}
		case AccessWrite:
			if pg.prot&ProtWrite == 0 {
				return &Fault{Addr: at, Access: access, Mapped: true}
			}
		}
		if base == last {
			break
		}
	}
	return nil
}

// Read copies n bytes starting at addr into a fresh slice.
func (m *Memory) Read(addr Addr, n int) ([]byte, *Fault) {
	if f := m.check(addr, n, AccessRead); f != nil {
		return nil, f
	}
	out := make([]byte, n)
	m.copyOut(addr, out)
	return out, nil
}

// Write copies data into memory at addr.
func (m *Memory) Write(addr Addr, data []byte) *Fault {
	if f := m.check(addr, len(data), AccessWrite); f != nil {
		return f
	}
	m.copyIn(addr, data)
	return nil
}

// copyOut copies from memory into out; all pages must be mapped.
func (m *Memory) copyOut(addr Addr, out []byte) {
	for len(out) > 0 {
		pg := m.lookup(addr.PageBase())
		off := int(addr - addr.PageBase())
		n := copy(out, pg.data[off:])
		out = out[n:]
		addr += Addr(n)
	}
}

// copyIn copies data into memory; all pages must be mapped. Shared
// pages are copied before the store lands.
func (m *Memory) copyIn(addr Addr, data []byte) {
	for len(data) > 0 {
		base := addr.PageBase()
		pg := m.ensureOwned(base, m.lookup(base))
		off := int(addr - base)
		n := copy(pg.data[off:], data)
		data = data[n:]
		addr += Addr(n)
	}
}

// LoadByte reads a single byte. Like every read path it performs no
// state writes, so frozen snapshots and fork templates stay pristine
// under arbitrary reads.
func (m *Memory) LoadByte(addr Addr) (byte, *Fault) {
	pg := m.lookup(addr.PageBase())
	if pg == nil {
		return 0, &Fault{Addr: addr, Access: AccessRead}
	}
	if pg.prot&ProtRead == 0 {
		return 0, &Fault{Addr: addr, Access: AccessRead, Mapped: true}
	}
	return pg.data[addr&(PageSize-1)], nil
}

// StoreByte writes a single byte. The protection check precedes the
// copy-on-write fault, so a denied store never copies the page.
func (m *Memory) StoreByte(addr Addr, b byte) *Fault {
	base := addr.PageBase()
	pg := m.lookup(base)
	if pg == nil {
		return &Fault{Addr: addr, Access: AccessWrite}
	}
	if pg.prot&ProtWrite == 0 {
		return &Fault{Addr: addr, Access: AccessWrite, Mapped: true}
	}
	pg = m.ensureOwned(base, pg)
	pg.data[addr&(PageSize-1)] = b
	return nil
}

// ReadU16 reads a little-endian 16-bit value.
func (m *Memory) ReadU16(addr Addr) (uint16, *Fault) {
	b, f := m.Read(addr, 2)
	if f != nil {
		return 0, f
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

// ReadU32 reads a little-endian 32-bit value.
func (m *Memory) ReadU32(addr Addr) (uint32, *Fault) {
	b, f := m.Read(addr, 4)
	if f != nil {
		return 0, f
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// ReadU64 reads a little-endian 64-bit value.
func (m *Memory) ReadU64(addr Addr) (uint64, *Fault) {
	b, f := m.Read(addr, 8)
	if f != nil {
		return 0, f
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteU16 writes a little-endian 16-bit value.
func (m *Memory) WriteU16(addr Addr, v uint16) *Fault {
	return m.Write(addr, []byte{byte(v), byte(v >> 8)})
}

// WriteU32 writes a little-endian 32-bit value.
func (m *Memory) WriteU32(addr Addr, v uint32) *Fault {
	return m.Write(addr, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// WriteU64 writes a little-endian 64-bit value.
func (m *Memory) WriteU64(addr Addr, v uint64) *Fault {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return m.Write(addr, b)
}

// maxCString caps CString scans: a terminator must appear within the
// mapped region, and a megabyte without one means the simulation set up
// a pathological string. The scan then faults at the cursor, exactly as
// the historical byte-at-a-time loop did.
const maxCString = 1 << 20

// CString reads a NUL-terminated string starting at addr. The scan
// observes protection page by page, so an unterminated string in a
// bounded region faults at exactly the first inaccessible byte — the
// behaviour real C string functions exhibit.
func (m *Memory) CString(addr Addr) (string, *Fault) {
	var buf []byte
	a := addr
	for {
		pg := m.lookup(a.PageBase())
		if pg == nil {
			return "", &Fault{Addr: a, Access: AccessRead}
		}
		if pg.prot&ProtRead == 0 {
			return "", &Fault{Addr: a, Access: AccessRead, Mapped: true}
		}
		chunk := pg.data[a&(PageSize-1):]
		i := bytes.IndexByte(chunk, 0)
		if i < 0 {
			i = len(chunk)
		}
		if len(buf)+i > maxCString {
			return "", &Fault{Addr: a + Addr(maxCString-len(buf)), Access: AccessRead, Mapped: true}
		}
		if i < len(chunk) {
			return string(append(buf, chunk[:i]...)), nil
		}
		buf = append(buf, chunk...)
		a += Addr(len(chunk))
	}
}

// WriteCString writes s followed by a NUL terminator at addr.
func (m *Memory) WriteCString(addr Addr, s string) *Fault {
	b := make([]byte, len(s)+1)
	copy(b, s)
	return m.Write(addr, b)
}

// Stack returns the simulated stack of this address space.
func (m *Memory) Stack() *Stack { return m.stack }

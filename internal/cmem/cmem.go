// Package cmem simulates the paged, protected memory of a C process.
//
// The HEALERS fault injector depends on two hardware facilities: per-page
// memory protection (so that an access one byte past an allocation traps)
// and faulting addresses (so the injector can attribute a segmentation
// fault to the test-case generator that owns the region). Package cmem
// provides both for a simulated 64-bit address space: pages can be mapped
// with independent read/write protection, every access is checked, and a
// failed access reports the exact faulting address and access kind.
//
// Forking is copy-on-write: Clone copies only the page table and takes a
// reference on every page; the first mutation of a shared page (a store,
// a protection change, a re-map) copies it. Read paths are strictly
// side-effect-free, which makes a Memory safe to Clone concurrently from
// several goroutines as long as nobody mutates it — the property the
// parallel campaign schedulers rely on to fork worker templates without
// serializing.
//
// All methods return a *Fault on bad accesses instead of panicking; the
// process layer (package csim) converts faults into simulated signals.
package cmem

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the size in bytes of a simulated memory page.
const PageSize = 4096

// Addr is a simulated virtual address.
type Addr uint64

// PageBase returns the address of the start of the page containing a.
func (a Addr) PageBase() Addr { return a &^ (PageSize - 1) }

// Prot is a page protection bitmask.
type Prot uint8

// Page protections. A page may be mapped with no access at all
// (a guard page), read-only, write-only, or read-write.
const (
	ProtNone Prot = 0
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtRW = ProtRead | ProtWrite
)

func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtWrite:
		return "-w-"
	case ProtRW:
		return "rw-"
	}
	return fmt.Sprintf("Prot(%d)", uint8(p))
}

// Access is the kind of memory access that caused a fault.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota + 1
	AccessWrite
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	}
	return fmt.Sprintf("Access(%d)", uint8(a))
}

// Fault describes a memory access violation: a simulated SIGSEGV.
// It records the exact faulting address, which the adaptive fault
// injector uses to find the test-case generator owning the region.
type Fault struct {
	Addr   Addr   // faulting address
	Access Access // attempted access kind
	Mapped bool   // true if the page was mapped but protection denied access
}

var _ error = (*Fault)(nil)

func (f *Fault) Error() string {
	state := "unmapped"
	if f.Mapped {
		state = "protected"
	}
	return fmt.Sprintf("segmentation fault: %v of %s address %#x", f.Access, state, uint64(f.Addr))
}

// ErrNoMemory is returned when the simulated address space is exhausted.
var ErrNoMemory = errors.New("cmem: out of simulated memory")

// page is one 4 KiB unit of simulated memory. Pages are shared across
// forked address spaces: refs counts the page tables referencing this
// page, and a page may be mutated in place only while refs == 1. The
// refcount is atomic because sibling forks copy-on-write (and release)
// shared pages concurrently.
type page struct {
	prot Prot
	refs atomic.Int32
	data [PageSize]byte
}

// pagePool recycles page buffers: every fork that diverges copies a few
// pages and then discards them when its experiment ends, so a campaign
// would otherwise churn millions of 4 KiB allocations through the GC.
var pagePool = sync.Pool{New: func() any { return new(page) }}

// newPage returns an exclusively owned, zeroed page. Pooled pages carry
// the data of their previous life and must be cleared: freshly mapped
// simulated memory reads as zero.
func newPage(prot Prot) *page {
	pg := pagePool.Get().(*page)
	pg.prot = prot
	pg.data = [PageSize]byte{}
	pg.refs.Store(1)
	return pg
}

// copyOf returns an exclusively owned copy of src. No clearing is
// needed: the whole payload is overwritten.
func copyOf(src *page) *page {
	pg := pagePool.Get().(*page)
	pg.prot = src.prot
	pg.data = src.data
	pg.refs.Store(1)
	return pg
}

// release drops one reference; the last referent returns the page to
// the pool.
func (pg *page) release() {
	if pg.refs.Add(-1) == 0 {
		pagePool.Put(pg)
	}
}

// ForkStats counts page sharing across one fork tree. Every Memory
// cloned (directly or transitively) from the same root shares one
// ForkStats, so a campaign can report how much copying its forks
// avoided. All counters are atomic: sibling forks diverge concurrently.
type ForkStats struct {
	forks       atomic.Int64
	pagesShared atomic.Int64
	pagesCopied atomic.Int64
}

// ForkCounts is a point-in-time snapshot of a fork tree's counters.
type ForkCounts struct {
	// Forks is the number of Clone calls in the tree.
	Forks int64
	// PagesShared counts page-table entries forked by reference — each
	// one a 4 KiB copy the eager clone would have performed up front.
	PagesShared int64
	// PagesCopied counts copy-on-write copies actually performed when a
	// fork diverged.
	PagesCopied int64
}

// Snapshot reads the counters.
func (s *ForkStats) Snapshot() ForkCounts {
	return ForkCounts{
		Forks:       s.forks.Load(),
		PagesShared: s.pagesShared.Load(),
		PagesCopied: s.pagesCopied.Load(),
	}
}

// BytesAvoided is the copying the fork tree skipped: pages shared at
// fork time minus the ones later copied on write, in bytes.
func (c ForkCounts) BytesAvoided() int64 {
	return (c.PagesShared - c.PagesCopied) * PageSize
}

// Memory is a simulated address space. The zero value is not usable;
// call New. A Memory is owned by one goroutine: mutating methods are
// not safe for concurrent use. Read-only methods and Clone perform no
// writes to shared state, so concurrent Clones of (and reads from) an
// otherwise-idle Memory are safe — forked children then diverge under
// their exclusive owners via copy-on-write.
type Memory struct {
	pages map[Addr]*page // keyed by page base address

	// Region cursors for the distinct address-space areas. Keeping the
	// areas far apart mirrors a real process layout and guarantees that
	// heap, mmap and stack allocations never collide.
	heapCursor Addr
	mmapCursor Addr

	heap *heapState

	stack *Stack

	// stats is shared by every Memory in this fork tree.
	stats *ForkStats

	// TraceID and SpanID identify the causal span that owns this address
	// space (internal/obs span IDs, kept as plain integers so cmem stays
	// dependency-free). Clone inherits them, which is how a trace crosses
	// the fork boundary: a COW child is attributable to the span that
	// forked its template without any side channel.
	TraceID uint64
	SpanID  uint64
}

// Address-space layout constants. The null page (and everything below
// heapBase) is never mapped, so small integers used as pointers fault.
const (
	heapBase Addr = 0x0000_1000_0000
	mmapBase Addr = 0x2000_0000_0000
	stackTop Addr = 0x7fff_ffff_f000
	// stackSize is deliberately small: even with copy-on-write forking
	// every mapped page costs a table entry and a refcount per fork, so
	// a lean stack keeps millions of forks affordable.
	stackSize = 32 << 10
)

// New returns an empty simulated address space with a mapped stack.
func New() *Memory {
	m := &Memory{
		pages:      make(map[Addr]*page),
		heapCursor: heapBase,
		mmapCursor: mmapBase,
		stats:      &ForkStats{},
	}
	m.heap = newHeapState()
	m.stack = newStack(m)
	return m
}

// Clone returns a copy-on-write fork of the address space. The fault
// injector forks a fresh child for every call of the function under
// test; Clone is the memory half of that fork. Only the page table is
// copied — every page is shared by reference and copied lazily when
// either side first mutates it.
//
// Clone reads the parent but never writes it, so several goroutines may
// Clone the same Memory concurrently (the scheduler's worker-template
// fork); concurrency with mutations of the parent remains undefined.
func (m *Memory) Clone() *Memory {
	c := &Memory{
		pages:      make(map[Addr]*page, len(m.pages)),
		heapCursor: m.heapCursor,
		mmapCursor: m.mmapCursor,
		stats:      m.stats,
		TraceID:    m.TraceID,
		SpanID:     m.SpanID,
	}
	for base, pg := range m.pages {
		pg.refs.Add(1)
		c.pages[base] = pg
	}
	c.heap = m.heap.clone()
	c.stack = m.stack.clone(c)
	m.stats.forks.Add(1)
	m.stats.pagesShared.Add(int64(len(m.pages)))
	return c
}

// CloneEager returns a deep copy sharing no pages: the pre-COW fork,
// kept as the reference implementation for the differential tests and
// the eager-vs-COW benchmarks. It does not count toward ForkStats.
func (m *Memory) CloneEager() *Memory {
	c := &Memory{
		pages:      make(map[Addr]*page, len(m.pages)),
		heapCursor: m.heapCursor,
		mmapCursor: m.mmapCursor,
		stats:      m.stats,
		TraceID:    m.TraceID,
		SpanID:     m.SpanID,
	}
	for base, pg := range m.pages {
		c.pages[base] = copyOf(pg)
	}
	c.heap = m.heap.clone()
	c.stack = m.stack.clone(c)
	return c
}

// Release drops the address space's page references, returning
// exclusively owned pages to the page pool. The fault injector calls it
// when a forked child's experiment completes; the Memory must not be
// used afterwards (mutations panic, accesses fault as unmapped).
func (m *Memory) Release() {
	for _, pg := range m.pages {
		pg.release()
	}
	m.pages = nil
}

// ForkStats returns the sharing counters of this Memory's fork tree.
func (m *Memory) ForkStats() *ForkStats { return m.stats }

// ensureOwned returns a page for base that this Memory owns
// exclusively, copying the shared page first if needed. Every mutation
// path funnels through it — the copy-on-write fault handler.
func (m *Memory) ensureOwned(base Addr, pg *page) *page {
	if pg.refs.Load() == 1 {
		return pg
	}
	np := copyOf(pg)
	m.pages[base] = np
	pg.release()
	m.stats.pagesCopied.Add(1)
	return np
}

// Map maps n bytes starting at the page containing addr with protection
// prot. It rounds the region outward to page boundaries. Mapping an
// already-mapped page resets its protection but preserves its contents.
func (m *Memory) Map(addr Addr, n int, prot Prot) {
	if n <= 0 {
		return
	}
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		if pg, ok := m.pages[base]; ok {
			if pg.prot != prot {
				m.ensureOwned(base, pg).prot = prot
			}
		} else {
			m.pages[base] = newPage(prot)
		}
		if base == last {
			break
		}
	}
}

// Unmap removes every page overlapping [addr, addr+n). Subsequent
// accesses to the region fault as unmapped.
func (m *Memory) Unmap(addr Addr, n int) {
	if n <= 0 {
		return
	}
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		if pg, ok := m.pages[base]; ok {
			delete(m.pages, base)
			pg.release()
		}
		if base == last {
			break
		}
	}
}

// Protect changes the protection of every page overlapping [addr, addr+n).
// Unmapped pages in the range are left unmapped. Changing a shared
// page's protection copies it: protection state lives in the page, and
// the sibling forks must keep seeing the old protection.
func (m *Memory) Protect(addr Addr, n int, prot Prot) {
	if n <= 0 {
		return
	}
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		if pg, ok := m.pages[base]; ok && pg.prot != prot {
			m.ensureOwned(base, pg).prot = prot
		}
		if base == last {
			break
		}
	}
}

// ProtAt reports the protection of the page containing addr and whether
// the page is mapped at all.
func (m *Memory) ProtAt(addr Addr) (Prot, bool) {
	pg, ok := m.pages[addr.PageBase()]
	if !ok {
		return ProtNone, false
	}
	return pg.prot, true
}

// MmapRegion reserves and maps a fresh region of n bytes (page rounded)
// in the mmap area and returns its base address. The region is preceded
// and followed by permanently unmapped guard gaps so that out-of-bounds
// accesses fault with an address attributable to this region.
func (m *Memory) MmapRegion(n int, prot Prot) (Addr, error) {
	if n < 0 {
		return 0, fmt.Errorf("cmem: negative mmap size %d", n)
	}
	pages := (n + PageSize - 1) / PageSize
	if pages == 0 {
		pages = 1
	}
	if m.mmapCursor+Addr((pages+2)*PageSize) < m.mmapCursor {
		return 0, ErrNoMemory
	}
	base := m.mmapCursor + PageSize // leading guard gap
	m.Map(base, pages*PageSize, prot)
	m.mmapCursor = base + Addr(pages*PageSize) + PageSize // trailing guard gap
	return base, nil
}

func (m *Memory) check(addr Addr, n int, access Access) *Fault {
	if n <= 0 {
		return nil
	}
	first := addr.PageBase()
	last := (addr + Addr(n) - 1).PageBase()
	for base := first; ; base += PageSize {
		pg, ok := m.pages[base]
		at := base
		if at < addr {
			at = addr
		}
		if !ok {
			return &Fault{Addr: at, Access: access}
		}
		switch access {
		case AccessRead:
			if pg.prot&ProtRead == 0 {
				return &Fault{Addr: at, Access: access, Mapped: true}
			}
		case AccessWrite:
			if pg.prot&ProtWrite == 0 {
				return &Fault{Addr: at, Access: access, Mapped: true}
			}
		}
		if base == last {
			break
		}
	}
	return nil
}

// Read copies n bytes starting at addr into a fresh slice.
func (m *Memory) Read(addr Addr, n int) ([]byte, *Fault) {
	if f := m.check(addr, n, AccessRead); f != nil {
		return nil, f
	}
	out := make([]byte, n)
	m.copyOut(addr, out)
	return out, nil
}

// Write copies data into memory at addr.
func (m *Memory) Write(addr Addr, data []byte) *Fault {
	if f := m.check(addr, len(data), AccessWrite); f != nil {
		return f
	}
	m.copyIn(addr, data)
	return nil
}

// copyOut copies from memory into out; all pages must be mapped.
func (m *Memory) copyOut(addr Addr, out []byte) {
	for len(out) > 0 {
		pg := m.pages[addr.PageBase()]
		off := int(addr - addr.PageBase())
		n := copy(out, pg.data[off:])
		out = out[n:]
		addr += Addr(n)
	}
}

// copyIn copies data into memory; all pages must be mapped. Shared
// pages are copied before the store lands.
func (m *Memory) copyIn(addr Addr, data []byte) {
	for len(data) > 0 {
		base := addr.PageBase()
		pg := m.ensureOwned(base, m.pages[base])
		off := int(addr - base)
		n := copy(pg.data[off:], data)
		data = data[n:]
		addr += Addr(n)
	}
}

// LoadByte reads a single byte. Like every read path it performs no
// state writes, so frozen snapshots and fork templates stay pristine
// under arbitrary reads.
func (m *Memory) LoadByte(addr Addr) (byte, *Fault) {
	pg := m.pages[addr.PageBase()]
	if pg == nil {
		return 0, &Fault{Addr: addr, Access: AccessRead}
	}
	if pg.prot&ProtRead == 0 {
		return 0, &Fault{Addr: addr, Access: AccessRead, Mapped: true}
	}
	return pg.data[addr&(PageSize-1)], nil
}

// StoreByte writes a single byte. The protection check precedes the
// copy-on-write fault, so a denied store never copies the page.
func (m *Memory) StoreByte(addr Addr, b byte) *Fault {
	base := addr.PageBase()
	pg := m.pages[base]
	if pg == nil {
		return &Fault{Addr: addr, Access: AccessWrite}
	}
	if pg.prot&ProtWrite == 0 {
		return &Fault{Addr: addr, Access: AccessWrite, Mapped: true}
	}
	pg = m.ensureOwned(base, pg)
	pg.data[addr&(PageSize-1)] = b
	return nil
}

// ReadU16 reads a little-endian 16-bit value.
func (m *Memory) ReadU16(addr Addr) (uint16, *Fault) {
	b, f := m.Read(addr, 2)
	if f != nil {
		return 0, f
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

// ReadU32 reads a little-endian 32-bit value.
func (m *Memory) ReadU32(addr Addr) (uint32, *Fault) {
	b, f := m.Read(addr, 4)
	if f != nil {
		return 0, f
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// ReadU64 reads a little-endian 64-bit value.
func (m *Memory) ReadU64(addr Addr) (uint64, *Fault) {
	b, f := m.Read(addr, 8)
	if f != nil {
		return 0, f
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteU16 writes a little-endian 16-bit value.
func (m *Memory) WriteU16(addr Addr, v uint16) *Fault {
	return m.Write(addr, []byte{byte(v), byte(v >> 8)})
}

// WriteU32 writes a little-endian 32-bit value.
func (m *Memory) WriteU32(addr Addr, v uint32) *Fault {
	return m.Write(addr, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// WriteU64 writes a little-endian 64-bit value.
func (m *Memory) WriteU64(addr Addr, v uint64) *Fault {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return m.Write(addr, b)
}

// maxCString caps CString scans: a terminator must appear within the
// mapped region, and a megabyte without one means the simulation set up
// a pathological string. The scan then faults at the cursor, exactly as
// the historical byte-at-a-time loop did.
const maxCString = 1 << 20

// CString reads a NUL-terminated string starting at addr. The scan
// observes protection page by page, so an unterminated string in a
// bounded region faults at exactly the first inaccessible byte — the
// behaviour real C string functions exhibit.
func (m *Memory) CString(addr Addr) (string, *Fault) {
	var buf []byte
	a := addr
	for {
		pg := m.pages[a.PageBase()]
		if pg == nil {
			return "", &Fault{Addr: a, Access: AccessRead}
		}
		if pg.prot&ProtRead == 0 {
			return "", &Fault{Addr: a, Access: AccessRead, Mapped: true}
		}
		chunk := pg.data[a&(PageSize-1):]
		i := bytes.IndexByte(chunk, 0)
		if i < 0 {
			i = len(chunk)
		}
		if len(buf)+i > maxCString {
			return "", &Fault{Addr: a + Addr(maxCString-len(buf)), Access: AccessRead, Mapped: true}
		}
		if i < len(chunk) {
			return string(append(buf, chunk[:i]...)), nil
		}
		buf = append(buf, chunk...)
		a += Addr(len(chunk))
	}
}

// WriteCString writes s followed by a NUL terminator at addr.
func (m *Memory) WriteCString(addr Addr, s string) *Fault {
	b := make([]byte, len(s)+1)
	copy(b, s)
	return m.Write(addr, b)
}

// Stack returns the simulated stack of this address space.
func (m *Memory) Stack() *Stack { return m.stack }

package cmem

import (
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	m := New()
	base, err := m.MmapRegion(100, ProtRW)
	if err != nil {
		t.Fatalf("MmapRegion: %v", err)
	}
	if f := m.Write(base, []byte("hello")); f != nil {
		t.Fatalf("Write: %v", f)
	}
	got, f := m.Read(base, 5)
	if f != nil {
		t.Fatalf("Read: %v", f)
	}
	if string(got) != "hello" {
		t.Errorf("Read = %q, want %q", got, "hello")
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	m := New()
	tests := []struct {
		name string
		addr Addr
	}{
		{"null pointer", 0},
		{"small integer", 42},
		{"wild pointer", 0xdeadbeef},
		{"minus one", ^Addr(0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, f := m.LoadByte(tt.addr); f == nil {
				t.Errorf("read of %#x did not fault", uint64(tt.addr))
			} else if f.Addr != tt.addr {
				t.Errorf("fault addr = %#x, want %#x", uint64(f.Addr), uint64(tt.addr))
			}
			if f := m.StoreByte(tt.addr, 1); f == nil {
				t.Errorf("write of %#x did not fault", uint64(tt.addr))
			}
		})
	}
}

func TestProtectionEnforced(t *testing.T) {
	m := New()
	ro, err := m.MmapRegion(10, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, f := m.LoadByte(ro); f != nil {
		t.Errorf("read of read-only page faulted: %v", f)
	}
	f := m.StoreByte(ro, 1)
	if f == nil {
		t.Fatal("write to read-only page did not fault")
	}
	if !f.Mapped {
		t.Error("fault on protected page should report Mapped=true")
	}
	if f.Access != AccessWrite {
		t.Errorf("fault access = %v, want write", f.Access)
	}

	wo, err := m.MmapRegion(10, ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.StoreByte(wo, 1); f != nil {
		t.Errorf("write to write-only page faulted: %v", f)
	}
	if _, f := m.LoadByte(wo); f == nil {
		t.Error("read of write-only page did not fault")
	}

	guard, err := m.MmapRegion(10, ProtNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, f := m.LoadByte(guard); f == nil {
		t.Error("read of PROT_NONE page did not fault")
	}
	if f := m.StoreByte(guard, 1); f == nil {
		t.Error("write of PROT_NONE page did not fault")
	}
}

func TestFaultAddressIsExact(t *testing.T) {
	// The adaptive injector relies on the faulting address pointing at
	// the first inaccessible byte, so it can attribute the fault to the
	// region that ends just before it.
	m := New()
	base, err := m.MmapRegion(PageSize, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	// A read spanning the end of the region must fault at the first
	// byte of the (unmapped) following guard page.
	_, f := m.Read(base+PageSize-4, 8)
	if f == nil {
		t.Fatal("read past region did not fault")
	}
	want := base + PageSize
	if f.Addr != want {
		t.Errorf("fault addr = %#x, want %#x", uint64(f.Addr), uint64(want))
	}
}

func TestCrossPageReadWrite(t *testing.T) {
	m := New()
	base, err := m.MmapRegion(3*PageSize, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2*PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	at := base + PageSize/2
	if f := m.Write(at, data); f != nil {
		t.Fatalf("cross-page write faulted: %v", f)
	}
	got, f := m.Read(at, len(data))
	if f != nil {
		t.Fatalf("cross-page read faulted: %v", f)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestProtectChangesAccess(t *testing.T) {
	m := New()
	base, err := m.MmapRegion(PageSize, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.StoreByte(base, 7); f != nil {
		t.Fatal(f)
	}
	m.Protect(base, PageSize, ProtRead)
	if f := m.StoreByte(base, 8); f == nil {
		t.Error("write after Protect(ProtRead) did not fault")
	}
	b, f := m.LoadByte(base)
	if f != nil || b != 7 {
		t.Errorf("LoadByte = %d, %v; want 7, nil", b, f)
	}
	m.Protect(base, PageSize, ProtRW)
	if f := m.StoreByte(base, 8); f != nil {
		t.Errorf("write after re-protect faulted: %v", f)
	}
}

func TestUnmapFaults(t *testing.T) {
	m := New()
	base, err := m.MmapRegion(2*PageSize, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	m.Unmap(base, PageSize)
	if _, f := m.LoadByte(base); f == nil {
		t.Error("read of unmapped page did not fault")
	}
	if _, f := m.LoadByte(base + PageSize); f != nil {
		t.Errorf("read of still-mapped page faulted: %v", f)
	}
}

func TestScalarRoundTrips(t *testing.T) {
	m := New()
	base, err := m.MmapRegion(64, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.WriteU16(base, 0xbeef); f != nil {
		t.Fatal(f)
	}
	if v, _ := m.ReadU16(base); v != 0xbeef {
		t.Errorf("U16 = %#x", v)
	}
	if f := m.WriteU32(base+8, 0xdeadbeef); f != nil {
		t.Fatal(f)
	}
	if v, _ := m.ReadU32(base + 8); v != 0xdeadbeef {
		t.Errorf("U32 = %#x", v)
	}
	if f := m.WriteU64(base+16, 0x0123456789abcdef); f != nil {
		t.Fatal(f)
	}
	if v, _ := m.ReadU64(base + 16); v != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", v)
	}
}

func TestCString(t *testing.T) {
	m := New()
	base, err := m.MmapRegion(64, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.WriteCString(base, "robust"); f != nil {
		t.Fatal(f)
	}
	s, f := m.CString(base)
	if f != nil || s != "robust" {
		t.Errorf("CString = %q, %v", s, f)
	}
}

func TestCStringUnterminatedFaults(t *testing.T) {
	// An unterminated string filling its region to the last byte must
	// fault exactly at the guard page, like real strlen would.
	m := New()
	base, err := m.MmapRegion(PageSize, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	fill := make([]byte, PageSize)
	for i := range fill {
		fill[i] = 'x'
	}
	if f := m.Write(base, fill); f != nil {
		t.Fatal(f)
	}
	_, f := m.CString(base)
	if f == nil {
		t.Fatal("unterminated CString did not fault")
	}
	if f.Addr != base+PageSize {
		t.Errorf("fault addr = %#x, want %#x", uint64(f.Addr), uint64(base+PageSize))
	}
}

func TestMallocGuardPage(t *testing.T) {
	m := New()
	p, err := m.Malloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.StoreByte(p+23, 1); f != nil {
		t.Errorf("in-bounds write faulted: %v", f)
	}
	// Within the final page but out of bounds: must NOT fault (this is
	// the hole stateful checking exists to close).
	if f := m.StoreByte(p+24, 1); f != nil {
		t.Errorf("intra-page overflow faulted (should be silent at hardware level): %v", f)
	}
	// Past the final mapped page: must fault.
	if f := m.StoreByte(p+PageSize, 1); f == nil {
		t.Error("write past guard page did not fault")
	}
}

func TestMallocZero(t *testing.T) {
	m := New()
	p, err := m.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if p == 0 {
		t.Fatal("Malloc(0) returned null")
	}
	info, ok := m.AllocAt(p)
	if !ok || info.Base != p || info.Size != 0 {
		t.Errorf("AllocAt = %+v, %v", info, ok)
	}
}

func TestFree(t *testing.T) {
	m := New()
	p, err := m.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Free(p) {
		t.Fatal("Free of valid base returned false")
	}
	if m.Free(p) {
		t.Error("double Free returned true")
	}
	if _, f := m.LoadByte(p); f == nil {
		t.Error("use-after-free did not fault")
	}
	if m.Free(0xdead0000) {
		t.Error("Free of wild pointer returned true")
	}
}

func TestRealloc(t *testing.T) {
	m := New()
	p, err := m.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.Write(p, []byte("12345678")); f != nil {
		t.Fatal(f)
	}
	q, err := m.Realloc(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, f := m.Read(q, 8)
	if f != nil || string(got) != "12345678" {
		t.Errorf("Realloc lost data: %q %v", got, f)
	}
	if _, ok := m.AllocAt(p); ok {
		t.Error("old block still live after Realloc")
	}
	if _, err := m.Realloc(0xbad0000, 10); err == nil {
		t.Error("Realloc of wild pointer succeeded")
	}
	r, err := m.Realloc(0, 16)
	if err != nil || r == 0 {
		t.Errorf("Realloc(0, 16) = %#x, %v", uint64(r), err)
	}
}

func TestAllocAtInterior(t *testing.T) {
	m := New()
	p, err := m.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := m.AllocAt(p + 50)
	if !ok || info.Base != p || info.Size != 100 {
		t.Errorf("AllocAt(interior) = %+v, %v", info, ok)
	}
	if _, ok := m.AllocAt(p + 100); ok {
		t.Error("AllocAt(end) reported containment")
	}
}

func TestCloneIsolation(t *testing.T) {
	m := New()
	p, err := m.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.StoreByte(p, 1); f != nil {
		t.Fatal(f)
	}
	c := m.Clone()
	if f := c.StoreByte(p, 2); f != nil {
		t.Fatal(f)
	}
	b, _ := m.LoadByte(p)
	if b != 1 {
		t.Errorf("parent byte = %d after child write, want 1", b)
	}
	cb, _ := c.LoadByte(p)
	if cb != 2 {
		t.Errorf("child byte = %d, want 2", cb)
	}
	// Allocations in the clone must not disturb the parent.
	if _, err := c.Malloc(10); err != nil {
		t.Fatal(err)
	}
	if m.LiveAllocs() != 1 {
		t.Errorf("parent LiveAllocs = %d, want 1", m.LiveAllocs())
	}
	if c.LiveAllocs() != 2 {
		t.Errorf("clone LiveAllocs = %d, want 2", c.LiveAllocs())
	}
}

func TestStackFrames(t *testing.T) {
	m := New()
	s := m.Stack()
	f1 := s.PushFrame(64)
	buf := s.Alloca(32)
	if !s.Contains(buf) {
		t.Fatal("alloca result not on stack")
	}
	limit, ok := s.FrameLimit(buf)
	if !ok {
		t.Fatal("FrameLimit did not find frame")
	}
	if want := int(f1.Base - buf); limit != want {
		t.Errorf("FrameLimit = %d, want %d", limit, want)
	}
	if f := m.StoreByte(buf, 1); f != nil {
		t.Errorf("stack write faulted: %v", f)
	}
	s.PopFrame()
	if s.Depth() != 0 {
		t.Errorf("Depth after pop = %d", s.Depth())
	}
}

func TestStackFrameLimitNested(t *testing.T) {
	m := New()
	s := m.Stack()
	s.PushFrame(128)
	outer := s.Alloca(16)
	s.PushFrame(128)
	inner := s.Alloca(16)
	il, ok := s.FrameLimit(inner)
	if !ok || il <= 0 {
		t.Fatalf("inner FrameLimit = %d, %v", il, ok)
	}
	ol, ok := s.FrameLimit(outer)
	if !ok || ol <= 0 {
		t.Fatalf("outer FrameLimit = %d, %v", ol, ok)
	}
	if Addr(ol)+outer == Addr(il)+inner {
		t.Error("outer and inner frame limits should reference different frame bases")
	}
}

func TestStackNotHeap(t *testing.T) {
	m := New()
	s := m.Stack()
	s.PushFrame(64)
	buf := s.Alloca(16)
	if _, ok := m.AllocAt(buf); ok {
		t.Error("stack address reported as heap allocation")
	}
	p, _ := m.Malloc(16)
	if s.Contains(p) {
		t.Error("heap address reported as on stack")
	}
}

func TestPropertyMallocWritableReadable(t *testing.T) {
	// Property: every byte of any allocation is readable and writable,
	// and the byte one past the last mapped page always faults.
	f := func(sz uint16) bool {
		m := New()
		size := int(sz%8192) + 1
		p, err := m.Malloc(size)
		if err != nil {
			return false
		}
		for _, off := range []int{0, size / 2, size - 1} {
			if f := m.StoreByte(p+Addr(off), 0xAA); f != nil {
				return false
			}
			if b, f := m.LoadByte(p + Addr(off)); f != nil || b != 0xAA {
				return false
			}
		}
		pages := (size + PageSize - 1) / PageSize
		if _, f := m.LoadByte(p + Addr(pages*PageSize)); f == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyReadWriteRoundTrip(t *testing.T) {
	f := func(data []byte, off uint8) bool {
		if len(data) == 0 {
			return true
		}
		m := New()
		base, err := m.MmapRegion(len(data)+int(off), ProtRW)
		if err != nil {
			return false
		}
		at := base + Addr(off)
		// The region is page-rounded, so writing at off still fits.
		if f := m.Write(at, data); f != nil {
			return false
		}
		got, f := m.Read(at, len(data))
		if f != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyFaultAddrInRange(t *testing.T) {
	// Property: a faulting access of [addr, addr+n) reports a fault
	// address within that range.
	f := func(a uint32, n uint8) bool {
		m := New()
		addr := Addr(a)
		size := int(n) + 1
		_, fault := m.Read(addr, size)
		if fault == nil {
			return false // nothing below heapBase is mapped... except stack; skip
		}
		return fault.Addr >= addr && fault.Addr < addr+Addr(size)
	}
	// Restrict to low addresses that are never mapped.
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProtString(t *testing.T) {
	tests := []struct {
		p    Prot
		want string
	}{
		{ProtNone, "---"},
		{ProtRead, "r--"},
		{ProtWrite, "-w-"},
		{ProtRW, "rw-"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", uint8(tt.p), got, tt.want)
		}
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Addr: 0x1000, Access: AccessWrite, Mapped: true}
	msg := f.Error()
	if msg == "" {
		t.Fatal("empty fault message")
	}
	var err error = f
	if err.Error() != msg {
		t.Error("Fault does not implement error consistently")
	}
}

package cmem

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// dumpState renders every observable byte of a Memory: page table
// (base, protection, contents hash), region cursors, heap table and
// index, and stack bookkeeping. Page refcounts are deliberately
// excluded — they are sharing metadata, not simulated-machine state,
// and forking changes them without changing what the machine can
// observe.
func dumpState(m *Memory) string {
	var b strings.Builder
	merged := make(map[Addr]*page)
	m.forEachPage(func(base Addr, pg *page) { merged[base] = pg })
	bases := make([]Addr, 0, len(merged))
	for base := range merged {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, base := range bases {
		pg := merged[base]
		h := fnv.New64a()
		h.Write(pg.data[:])
		fmt.Fprintf(&b, "page %#x %s %#x\n", uint64(base), pg.prot, h.Sum64())
	}
	fmt.Fprintf(&b, "cursors heap=%#x mmap=%#x\n", uint64(m.heapCursor), uint64(m.mmapCursor))
	fmt.Fprintf(&b, "heap sorted=%v allocs=", m.heap.sorted)
	abases := make([]Addr, 0, len(m.heap.allocs))
	for a := range m.heap.allocs {
		abases = append(abases, a)
	}
	sort.Slice(abases, func(i, j int) bool { return abases[i] < abases[j] })
	for _, a := range abases {
		fmt.Fprintf(&b, "%#x:%d ", uint64(a), m.heap.allocs[a])
	}
	fmt.Fprintf(&b, "\nstack low=%#x sp=%#x frames=%v\n", uint64(m.stack.low), uint64(m.stack.sp), m.stack.frames)
	return b.String()
}

// requirePure runs reads against m and fails the test if any of them
// changed the dumped state — the frozen-snapshot invariant every read
// path must uphold for copy-on-write forking to be sound.
func requirePure(t *testing.T, m *Memory, name string, reads func()) {
	t.Helper()
	before := dumpState(m)
	reads()
	if after := dumpState(m); after != before {
		t.Errorf("%s mutated memory state:\nbefore:\n%s\nafter:\n%s", name, before, after)
	}
}

// TestReadPathsLeaveSnapshotFrozen drives every read accessor —
// including the faulting variants — against a richly populated address
// space and asserts the deep state dump is bit-identical afterwards.
// Before COW, CString and AllocAt both wrote state on the read path
// (a single-entry page cache and a lazy index rebuild); this test pins
// the bug class shut.
func TestReadPathsLeaveSnapshotFrozen(t *testing.T) {
	m := New()
	heapA, err := m.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	heapB, err := m.Malloc(3*PageSize + 17)
	if err != nil {
		t.Fatal(err)
	}
	if f := m.WriteCString(heapA, "hello"); f != nil {
		t.Fatal(f)
	}
	ro, err := m.MmapRegion(PageSize, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	wo, err := m.MmapRegion(PageSize, ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := m.MmapRegion(PageSize, ProtNone)
	if err != nil {
		t.Fatal(err)
	}
	// An unterminated string region: CString must scan to the guard gap
	// and fault, without caching or otherwise recording its progress.
	unterm, err := m.MmapRegion(16, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	fill := make([]byte, PageSize)
	for i := range fill {
		fill[i] = 'x'
	}
	if f := m.Write(unterm, fill); f != nil {
		t.Fatal(f)
	}
	m.Stack().PushFrame(64)
	local := m.Stack().Alloca(32)

	requirePure(t, m, "reads", func() {
		m.Read(heapA, 6)
		m.Read(heapB, 2*PageSize) // page-spanning
		m.Read(guard, 1)          // mapped-protected fault
		m.Read(heapB+Addr(4*PageSize), 8)
		m.LoadByte(heapA)
		m.LoadByte(wo) // write-only read fault
		m.LoadByte(0)  // unmapped fault
		m.CString(heapA)
		m.CString(unterm) // unterminated: scans a full page, faults at guard
		m.CString(wo)
		m.CString(0xdead_0000)
		m.ReadU16(heapA)
		m.ReadU32(heapA)
		m.ReadU64(heapB)
		m.ProtAt(ro)
		m.ProtAt(0x42)
		m.AllocAt(heapA + 50)
		m.AllocAt(ro) // miss: mmap region, not heap
		m.AllocAt(heapB + Addr(10*PageSize))
		m.IsAllocBase(heapA)
		m.IsAllocBase(heapA + 1)
		m.LiveAllocs()
		m.Stack().Contains(local)
		m.Stack().FrameLimit(local)
		m.Stack().FrameLimit(heapA)
		m.Stack().Depth()
	})

	// Clone must also leave the parent's observable state frozen (it
	// bumps refcounts only), and the child must start as a perfect copy.
	before := dumpState(m)
	c := m.Clone()
	if after := dumpState(m); after != before {
		t.Errorf("Clone mutated parent state:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if cd := dumpState(c); cd != before {
		t.Errorf("fork is not a perfect copy:\nparent:\n%s\nchild:\n%s", before, cd)
	}
	c.Release()
}

// TestCStringScanCap pins the pathological-string cap: a readable
// unterminated run longer than maxCString faults at exactly the
// megabyte mark, as the historical byte-at-a-time scan did.
func TestCStringScanCap(t *testing.T) {
	m := New()
	n := maxCString + PageSize
	base, err := m.MmapRegion(n, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, PageSize)
	for i := range chunk {
		chunk[i] = 'a'
	}
	for off := 0; off < n; off += PageSize {
		if f := m.Write(base+Addr(off), chunk); f != nil {
			t.Fatal(f)
		}
	}
	_, f := m.CString(base)
	if f == nil {
		t.Fatal("unterminated megabyte string did not fault")
	}
	want := Fault{Addr: base + maxCString, Access: AccessRead, Mapped: true}
	if *f != want {
		t.Errorf("cap fault = %+v, want %+v", *f, want)
	}
}

// memPair drives a COW memory and an eager-clone memory through the
// same operations; the two must stay observationally identical.
type memPair struct{ cow, eager *Memory }

func sameFault(a, b *Fault) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

// TestDifferentialCOWvsEager is the randomized property test for the
// tentpole: starting from one pair, a random walk of maps, protects,
// reads, writes, heap traffic, forks and releases must produce
// byte-identical observations — data, errors, and exact fault
// addresses and access kinds — whether forks are copy-on-write or
// eager deep copies. Any divergence is a COW aliasing bug.
func TestDifferentialCOWvsEager(t *testing.T) {
	prots := []Prot{ProtNone, ProtRead, ProtWrite, ProtRW}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			pairs := []*memPair{{cow: New(), eager: New()}}
			// Interesting bases; offsets around them reach region
			// interiors, page spans, guard gaps and wild addresses.
			addrs := []Addr{stackTop - Addr(stackSize), heapBase, mmapBase}
			randAddr := func() Addr {
				base := addrs[rng.Intn(len(addrs))]
				return base + Addr(rng.Intn(5*PageSize)) - PageSize
			}

			const steps = 3000
			for step := 0; step < steps; step++ {
				p := pairs[rng.Intn(len(pairs))]
				op := rng.Intn(16)
				switch {
				case op == 0: // mmap a fresh region
					n := rng.Intn(3*PageSize) + 1
					prot := prots[rng.Intn(len(prots))]
					a1, e1 := p.cow.MmapRegion(n, prot)
					a2, e2 := p.eager.MmapRegion(n, prot)
					if a1 != a2 || (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: MmapRegion diverged: %#x,%v vs %#x,%v", step, a1, e1, a2, e2)
					}
					addrs = append(addrs, a1)
				case op == 1: // malloc
					n := rng.Intn(2 * PageSize)
					a1, e1 := p.cow.Malloc(n)
					a2, e2 := p.eager.Malloc(n)
					if a1 != a2 || (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: Malloc diverged", step)
					}
					addrs = append(addrs, a1)
				case op == 2: // free
					a := randAddr()
					if p.cow.Free(a) != p.eager.Free(a) {
						t.Fatalf("step %d: Free(%#x) diverged", step, a)
					}
				case op == 3: // realloc
					a := randAddr()
					n := rng.Intn(PageSize)
					a1, e1 := p.cow.Realloc(a, n)
					a2, e2 := p.eager.Realloc(a, n)
					if a1 != a2 || (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: Realloc diverged", step)
					}
					if e1 == nil {
						addrs = append(addrs, a1)
					}
				case op == 4: // map over an arbitrary range
					a, n := randAddr(), rng.Intn(2*PageSize)+1
					prot := prots[rng.Intn(len(prots))]
					p.cow.Map(a, n, prot)
					p.eager.Map(a, n, prot)
				case op == 5: // unmap
					a, n := randAddr(), rng.Intn(2*PageSize)+1
					p.cow.Unmap(a, n)
					p.eager.Unmap(a, n)
				case op == 6: // protect
					a, n := randAddr(), rng.Intn(2*PageSize)+1
					prot := prots[rng.Intn(len(prots))]
					p.cow.Protect(a, n, prot)
					p.eager.Protect(a, n, prot)
				case op == 7: // write random data (possibly page-spanning)
					a := randAddr()
					data := make([]byte, rng.Intn(PageSize+100)+1)
					rng.Read(data)
					if f1, f2 := p.cow.Write(a, data), p.eager.Write(a, data); !sameFault(f1, f2) {
						t.Fatalf("step %d: Write(%#x) faults diverged: %v vs %v", step, a, f1, f2)
					}
				case op == 8: // read and compare contents + fault identity
					a, n := randAddr(), rng.Intn(PageSize+100)+1
					b1, f1 := p.cow.Read(a, n)
					b2, f2 := p.eager.Read(a, n)
					if !sameFault(f1, f2) || string(b1) != string(b2) {
						t.Fatalf("step %d: Read(%#x,%d) diverged: %v vs %v", step, a, n, f1, f2)
					}
				case op == 9: // single-byte store/load
					a := randAddr()
					v := byte(rng.Intn(256))
					if f1, f2 := p.cow.StoreByte(a, v), p.eager.StoreByte(a, v); !sameFault(f1, f2) {
						t.Fatalf("step %d: StoreByte faults diverged", step)
					}
					v1, f1 := p.cow.LoadByte(a)
					v2, f2 := p.eager.LoadByte(a)
					if v1 != v2 || !sameFault(f1, f2) {
						t.Fatalf("step %d: LoadByte diverged", step)
					}
				case op == 10: // C string scan, including faulting scans
					a := randAddr()
					s1, f1 := p.cow.CString(a)
					s2, f2 := p.eager.CString(a)
					if s1 != s2 || !sameFault(f1, f2) {
						t.Fatalf("step %d: CString(%#x) diverged: %q,%v vs %q,%v", step, a, s1, f1, s2, f2)
					}
				case op == 11: // write a C string
					a := randAddr()
					s := fmt.Sprintf("s%d", rng.Intn(1000))
					if f1, f2 := p.cow.WriteCString(a, s), p.eager.WriteCString(a, s); !sameFault(f1, f2) {
						t.Fatalf("step %d: WriteCString faults diverged", step)
					}
				case op == 12: // heap/protection introspection
					a := randAddr()
					i1, ok1 := p.cow.AllocAt(a)
					i2, ok2 := p.eager.AllocAt(a)
					if i1 != i2 || ok1 != ok2 {
						t.Fatalf("step %d: AllocAt(%#x) diverged: %+v,%v vs %+v,%v", step, a, i1, ok1, i2, ok2)
					}
					pr1, m1 := p.cow.ProtAt(a)
					pr2, m2 := p.eager.ProtAt(a)
					if pr1 != pr2 || m1 != m2 {
						t.Fatalf("step %d: ProtAt diverged", step)
					}
					if p.cow.IsAllocBase(a) != p.eager.IsAllocBase(a) || p.cow.LiveAllocs() != p.eager.LiveAllocs() {
						t.Fatalf("step %d: heap introspection diverged", step)
					}
				case op == 13: // wide multi-byte reads
					a := randAddr()
					u1, f1 := p.cow.ReadU64(a)
					u2, f2 := p.eager.ReadU64(a)
					if u1 != u2 || !sameFault(f1, f2) {
						t.Fatalf("step %d: ReadU64 diverged", step)
					}
				case op == 14 && len(pairs) < 6: // fork: COW vs eager
					pairs = append(pairs, &memPair{cow: p.cow.Clone(), eager: p.eager.CloneEager()})
				case op == 15 && len(pairs) > 1: // retire a pair
					i := rng.Intn(len(pairs))
					pairs[i].cow.Release()
					pairs[i].eager.Release()
					pairs = append(pairs[:i], pairs[i+1:]...)
				}
			}

			// Final deep comparison: after the walk, every surviving
			// COW memory must dump identically to its eager twin.
			for i, p := range pairs {
				if d1, d2 := dumpState(p.cow), dumpState(p.eager); d1 != d2 {
					t.Errorf("pair %d final state diverged:\ncow:\n%s\neager:\n%s", i, d1, d2)
				}
			}
		})
	}
}

package wrapgen

import (
	"strings"
	"testing"

	"healers/internal/clib"
	"healers/internal/corpus"
	"healers/internal/csim"
	"healers/internal/decl"
	"healers/internal/extract"
	"healers/internal/injector"
)

// asctimeDecl reproduces the Figure 2 declaration.
func asctimeDecl() *decl.FuncDecl {
	return &decl.FuncDecl{
		Name:          "asctime",
		Version:       "HLIBC_2.2",
		Ret:           "char*",
		Args:          []decl.ArgDecl{{CType: "const struct tm*", Robust: decl.RobustType{Base: "R_ARRAY_NULL", Size: decl.Fixed(44)}}},
		HasErrorValue: true,
		ErrorValue:    0,
		Errnos:        []string{"EINVAL"},
		ErrnoOnReject: csim.EINVAL,
		Attribute:     decl.AttrUnsafe,
		ErrClass:      decl.ErrClassConsistent,
	}
}

func TestWrapperCodegenAsctime(t *testing.T) {
	// The generated code must have the structure of the paper's
	// Figure 5: recursion flag, robust-type check, errno + error value,
	// PostProcessing label, call through the saved pointer.
	src := Function(asctimeDecl(), Options{})
	for _, want := range []string{
		"char* asctime(const struct tm* a1)",
		"if (in_flag) {",
		"return (*libc_asctime)(a1);",
		"in_flag = 1;",
		"if (!check_R_ARRAY_NULL(a1, 44)) {",
		"errno = EINVAL;",
		"ret = (char*)NULL;",
		"goto PostProcessing;",
		"ret = (*libc_asctime)(a1);",
		"PostProcessing: ;",
		"in_flag = 0;",
		"return ret;",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q:\n%s", want, src)
		}
	}
}

func TestCodegenVoidFunction(t *testing.T) {
	d := &decl.FuncDecl{
		Name:      "rewind",
		Ret:       "void",
		Args:      []decl.ArgDecl{{CType: "struct _IO_FILE*", Robust: decl.RobustType{Base: "OPEN_FILE"}}},
		Attribute: decl.AttrUnsafe,
		ErrClass:  decl.ErrClassNoReturn,

		ErrnoOnReject: csim.EINVAL,
	}
	src := Function(d, Options{})
	if strings.Contains(src, "ret =") {
		t.Errorf("void wrapper declares ret:\n%s", src)
	}
	if !strings.Contains(src, "check_OPEN_FILE(a1)") {
		t.Errorf("missing FILE check:\n%s", src)
	}
}

func TestCodegenDependentSizes(t *testing.T) {
	d := &decl.FuncDecl{
		Name: "strcpy",
		Ret:  "char*",
		Args: []decl.ArgDecl{
			{CType: "char*", Robust: decl.RobustType{Base: "W_ARRAY", Size: decl.SizeExpr{Kind: decl.SizeStrlenPlus1, A: 1}}},
			{CType: "const char*", Robust: decl.RobustType{Base: "CSTR"}},
		},
		HasErrorValue: true,
		ErrnoOnReject: csim.EINVAL,
		Attribute:     decl.AttrUnsafe,
	}
	src := Function(d, Options{})
	if !strings.Contains(src, "check_W_ARRAY(a1, healers_strlen(a2) + 1)") {
		t.Errorf("missing dependent-size check:\n%s", src)
	}
	if !strings.Contains(src, "check_CSTR(a2)") {
		t.Errorf("missing string check:\n%s", src)
	}
}

func TestCodegenAssertions(t *testing.T) {
	d := &decl.FuncDecl{
		Name:          "closedir",
		Ret:           "int",
		Args:          []decl.ArgDecl{{CType: "struct __dirstream*", Robust: decl.RobustType{Base: "OPEN_DIR"}}},
		HasErrorValue: true,
		ErrorValue:    ^uint64(0),
		ErrnoOnReject: csim.EINVAL,
		Attribute:     decl.AttrUnsafe,
		Assertions:    []decl.Assertion{decl.AssertValidDir},
	}
	src := Function(d, Options{LogViolations: true})
	if !strings.Contains(src, "healers_valid_dir(a1)") {
		t.Errorf("missing dir assertion:\n%s", src)
	}
	if !strings.Contains(src, `healers_log_violation("closedir")`) {
		t.Errorf("missing violation log:\n%s", src)
	}
	if !strings.Contains(src, "ret = (int)-1;") {
		t.Errorf("missing error value:\n%s", src)
	}
}

func TestCodegenAbortPolicy(t *testing.T) {
	src := Function(asctimeDecl(), Options{AbortOnViolation: true})
	if !strings.Contains(src, "abort();") {
		t.Errorf("missing abort:\n%s", src)
	}
	if strings.Contains(src, "goto PostProcessing;\n\t}") && !strings.Contains(src, "abort") {
		t.Error("abort policy still emits error return")
	}
}

func TestFileEmitsOnlyUnsafe(t *testing.T) {
	set := decl.NewDeclSet()
	set.Add(asctimeDecl())
	set.Add(&decl.FuncDecl{Name: "close", Ret: "int", Attribute: decl.AttrSafe})
	src := File(set, Options{})
	if !strings.Contains(src, "asctime") {
		t.Error("unsafe function missing")
	}
	if strings.Contains(src, " close(") {
		t.Error("safe function wrapped")
	}
	if !strings.Contains(src, "healers_checks.h") {
		t.Error("prelude missing")
	}
	if !strings.Contains(src, "__thread int in_flag") {
		t.Error("recursion flag missing")
	}
}

func TestCodegenIntAndBoundedChecks(t *testing.T) {
	d := &decl.FuncDecl{
		Name: "strncpy",
		Ret:  "char*",
		Args: []decl.ArgDecl{
			{CType: "char*", Robust: decl.RobustType{Base: "W_ARRAY", Size: decl.SizeExpr{Kind: decl.SizeArgValue, A: 2}}},
			{CType: "const char*", Robust: decl.RobustType{Base: "R_BOUNDED", Size: decl.SizeExpr{Kind: decl.SizeArgValue, A: 2}}},
			{CType: "size_t", Robust: decl.RobustType{Base: "INT_NONNEG"}},
		},
		HasErrorValue: true,
		ErrnoOnReject: csim.EINVAL,
		Attribute:     decl.AttrUnsafe,
	}
	src := Function(d, Options{})
	for _, want := range []string{
		"check_W_ARRAY(a1, (size_t)a3)",
		"check_R_BOUNDED(a2, (size_t)a3)",
		"((long)a3 >= 0)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q:\n%s", want, src)
		}
	}
}

func TestFullLibraryEmission(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	lib := clib.New()
	ext, err := extract.Run(corpus.Build(lib))
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := injector.New(lib, injector.DefaultConfig()).InjectAll(ext, lib.CrashProne86())
	if err != nil {
		t.Fatal(err)
	}
	src := File(decl.ApplySemiAutoEdits(campaign.Decls()), Options{LogViolations: true})
	for _, name := range lib.CrashProne86() {
		d := campaign.Results[name].Decl
		if !d.Unsafe() {
			if strings.Contains(src, " "+name+"(") {
				t.Errorf("safe function %s wrapped", name)
			}
			continue
		}
		if !strings.Contains(src, " "+name+"(") {
			t.Errorf("unsafe function %s missing from emission", name)
		}
	}
	// The semi-auto assertions appear for the DIR functions.
	if !strings.Contains(src, "healers_valid_dir") {
		t.Error("no dir assertions emitted")
	}
	if !strings.Contains(src, "healers_file_integrity") {
		t.Error("no file integrity assertions emitted")
	}
	if len(src) < 20_000 {
		t.Errorf("emission suspiciously small: %d bytes", len(src))
	}
}

func TestChecksHeader(t *testing.T) {
	h := ChecksHeader()
	for _, want := range []string{
		"HEALERS_CHECKS_H",
		"check_R_ARRAY_NULL",
		"check_R_BOUNDED",
		"check_OPEN_FILE",
		"healers_valid_dir",
		"healers_file_integrity",
		"healers_strlen",
		"healers_min",
		"healers_log_violation",
	} {
		if !strings.Contains(h, want) {
			t.Errorf("checks header missing %q", want)
		}
	}
	// Every check the generator can emit is declared in the header.
	bases := []string{"R_ARRAY", "RW_ARRAY", "W_ARRAY", "R_ARRAY_NULL", "RW_ARRAY_NULL",
		"W_ARRAY_NULL", "R_BOUNDED", "CSTR", "W_CSTR", "CSTR_NULL", "W_CSTR_NULL",
		"OPEN_FILE", "OPEN_FILE_NULL", "R_FILE", "W_FILE", "OPEN_DIR", "OPEN_DIR_NULL",
		"FD_VALID", "VALID_FUNC"}
	for _, b := range bases {
		expr := checkExpr(decl.RobustType{Base: b, Size: decl.Fixed(8)}, "a1", []string{"a1"})
		if expr == "" {
			continue
		}
		fn := expr[:strings.IndexByte(expr, '(')]
		if strings.HasPrefix(fn, "((") {
			continue // inline comparison, no function needed
		}
		if !strings.Contains(h, fn) {
			t.Errorf("header missing declaration for %s (emitted as %s)", b, expr)
		}
	}
}

// TestCodegenModeDefaultUnchanged pins the byte-identity contract the
// static wrapper verifier depends on: an unset Mode (and the explicit
// "reject") emit exactly the pre-mode Figure 5 wrapper.
func TestCodegenModeDefaultUnchanged(t *testing.T) {
	base := Function(asctimeDecl(), Options{LogViolations: true})
	if got := Function(asctimeDecl(), Options{LogViolations: true, Mode: "reject"}); got != base {
		t.Errorf("Mode reject diverges from default emission:\n%s", got)
	}
	for _, bad := range []string{"healers_heal", "healers_introspect"} {
		if strings.Contains(base, bad) {
			t.Errorf("default emission contains %s:\n%s", bad, base)
		}
	}
}

func TestCodegenHealMode(t *testing.T) {
	d := &decl.FuncDecl{
		Name: "strncpy",
		Ret:  "char*",
		Args: []decl.ArgDecl{
			{CType: "char*", Robust: decl.RobustType{Base: "W_ARRAY", Size: decl.SizeExpr{Kind: decl.SizeArgValue, A: 2}}},
			{CType: "const char*", Robust: decl.RobustType{Base: "CSTR"}},
			{CType: "size_t", Robust: decl.RobustType{Base: "INT_NONNEG"}},
		},
		HasErrorValue: true,
		ErrnoOnReject: csim.EINVAL,
		Attribute:     decl.AttrUnsafe,
	}
	src := Function(d, Options{Mode: "heal"})
	for _, want := range []string{
		// Array repair nests inside the failed check; rejection only
		// when the repair itself refuses.
		"if (!check_W_ARRAY(a1, (size_t)a3)) {\n\t\tif (!healers_heal_array((void **)&a1, (size_t)a3)) {",
		"if (!check_CSTR(a2)) {\n\t\tif (!healers_heal_string((char **)&a2, HEALERS_MAX_STRLEN)) {",
		// Integer repair is an unconditional clamp, no reject path.
		"if (!((long)a3 >= 0)) {\n\t\ta3 = (size_t)0;\n\t}",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("heal emission missing %q:\n%s", want, src)
		}
	}
}

func TestCodegenHealModeUnrepairable(t *testing.T) {
	d := &decl.FuncDecl{
		Name:          "closedir",
		Ret:           "int",
		Args:          []decl.ArgDecl{{CType: "struct __dirstream*", Robust: decl.RobustType{Base: "OPEN_DIR"}}},
		HasErrorValue: true,
		ErrorValue:    ^uint64(0),
		ErrnoOnReject: csim.EINVAL,
		Attribute:     decl.AttrUnsafe,
		Assertions:    []decl.Assertion{decl.AssertValidDir},
	}
	src := Function(d, Options{Mode: "heal"})
	if strings.Contains(src, "healers_heal") {
		t.Errorf("DIR argument emitted a repair:\n%s", src)
	}
	if !strings.Contains(src, "if (!check_OPEN_DIR(a1)) {") {
		t.Errorf("DIR check lost its rejection path:\n%s", src)
	}
}

func TestCodegenHealModeFileAssertion(t *testing.T) {
	d := &decl.FuncDecl{
		Name:          "fclose",
		Ret:           "int",
		Args:          []decl.ArgDecl{{CType: "struct _IO_FILE*", Robust: decl.RobustType{Base: "OPEN_FILE"}}},
		HasErrorValue: true,
		ErrorValue:    ^uint64(0),
		ErrnoOnReject: csim.EINVAL,
		Attribute:     decl.AttrUnsafe,
		Assertions:    []decl.Assertion{decl.AssertFileIntegrity},
	}
	src := Function(d, Options{Mode: "heal"})
	for _, want := range []string{
		"if (!check_OPEN_FILE(a1)) {\n\t\tif (!healers_heal_file((FILE **)&a1)) {",
		// The assertion repair substitutes and re-asserts (fixpoint).
		"if (!healers_heal_file((FILE **)&a1) || !healers_file_integrity(a1)) {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("heal emission missing %q:\n%s", want, src)
		}
	}
}

func TestCodegenIntrospectMode(t *testing.T) {
	d := &decl.FuncDecl{
		Name: "memcpy",
		Ret:  "void*",
		Args: []decl.ArgDecl{
			{CType: "void*", Robust: decl.RobustType{Base: "W_ARRAY", Size: decl.Fixed(8)}},
			{CType: "const void*", Robust: decl.RobustType{Base: "R_ARRAY", Size: decl.Fixed(8)}},
			{CType: "size_t", Robust: decl.RobustType{Base: "INT_NONNEG"}},
		},
		HasErrorValue: true,
		ErrnoOnReject: csim.EINVAL,
		Attribute:     decl.AttrUnsafe,
	}
	src := Function(d, Options{Mode: "introspect"})
	for _, want := range []string{
		"if (!check_W_ARRAY(a1, 8) && !healers_introspect((const void *)a1)) {",
		"if (!check_R_ARRAY(a2, 8) && !healers_introspect((const void *)a2)) {",
		// Non-array checks keep the plain rejection path.
		"if (!((long)a3 >= 0)) {\n\t\terrno",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("introspect emission missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "healers_heal") {
		t.Errorf("introspect emission contains heal calls:\n%s", src)
	}
}

func TestChecksHeaderModeHelpers(t *testing.T) {
	h := ChecksHeader()
	for _, want := range []string{
		"healers_heal_array", "healers_heal_string", "healers_heal_file",
		"healers_heal_fd", "healers_heal_func", "healers_introspect",
		"HEALERS_MAX_STRLEN",
	} {
		if !strings.Contains(h, want) {
			t.Errorf("checks header missing %q", want)
		}
	}
}

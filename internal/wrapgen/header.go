package wrapgen

// ChecksHeader returns healers_checks.h — the declarations of the
// checking functions the generated wrapper calls. A real deployment
// implements them exactly as internal/wrapper does: a stateful
// allocation table fed by intercepted allocators, stack-frame bounds,
// page probing, and fileno+fstat FILE validation.
func ChecksHeader() string {
	return `/* healers_checks.h — checking functions for generated wrappers.
 *
 * The check_* functions return non-zero when the argument belongs to
 * the robust type's value set. Implementations follow the three-tier
 * strategy of the HEALERS runtime:
 *   1. the allocation table (exact bounds, updated by intercepted
 *      malloc/calloc/realloc/free),
 *   2. stack frame bounds (the Libsafe check),
 *   3. per-page accessibility probing.
 */
#ifndef HEALERS_CHECKS_H
#define HEALERS_CHECKS_H

#include <stddef.h>
#include <stdio.h>
#include <dirent.h>

/* Memory regions of at least n bytes with the given access. */
int check_R_ARRAY(const void *p, size_t n);
int check_W_ARRAY(void *p, size_t n);
int check_RW_ARRAY(void *p, size_t n);
int check_R_ARRAY_NULL(const void *p, size_t n);
int check_W_ARRAY_NULL(void *p, size_t n);
int check_RW_ARRAY_NULL(void *p, size_t n);

/* Readable until a NUL terminator or n bytes, whichever comes first
 * (the strncpy-source contract). */
int check_R_BOUNDED(const void *p, size_t n);

/* NUL-terminated strings (W variants also require write access). */
int check_CSTR(const char *s);
int check_W_CSTR(char *s);
int check_CSTR_NULL(const char *s);
int check_W_CSTR_NULL(char *s);

/* Open streams, validated through fileno(3) + fstat(2). */
int check_OPEN_FILE(FILE *f);
int check_OPEN_FILE_NULL(FILE *f);
int check_R_FILE(FILE *f);
int check_W_FILE(FILE *f);

/* Directory streams: only the memory is checkable automatically; the
 * stateful table behind healers_valid_dir closes the gap. */
int check_OPEN_DIR(DIR *d);
int check_OPEN_DIR_NULL(DIR *d);

/* Scalar checks used inline by the generator. */
int check_FD_VALID(int fd);
int check_VALID_FUNC(const void *p);

/* Executable assertions added by semi-automatic declarations. */
int healers_valid_dir(DIR *d);
int healers_file_integrity(FILE *f);

/* Helpers used in size expressions. */
size_t healers_strlen(const char *s);
static inline size_t healers_min(size_t a, size_t b) { return a < b ? a : b; }

/* Violation logging for the deployed wrapper. */
void healers_log_violation(const char *func);

/* Repair helpers for heal-mode wrappers (Options.Mode == "heal"). Each
 * returns non-zero when the argument was repaired so that it now passes
 * the corresponding check_* function (the fixpoint contract); zero
 * means unrepairable and the wrapper falls back to rejection. Pointer
 * repairs may rewrite *p to the interposer's zeroed sink region or to a
 * substituted resource (a FILE/fd open on the sink scratch file). */
#define HEALERS_MAX_STRLEN 4096
int healers_heal_array(void **p, size_t n);
int healers_heal_string(char **s, size_t bound);
int healers_heal_file(FILE **f);
int healers_heal_fd(int *fd);
int healers_heal_func(void **p);

/* Allocation-table rescue for introspect-mode wrappers: non-zero when
 * p lies inside a live tracked allocation, whose actual extent then
 * stands in for the inferred worst-case bound. */
int healers_introspect(const void *p);

#endif /* HEALERS_CHECKS_H */
`
}

package report

import (
	"strings"
	"testing"
	"time"

	"healers/internal/obs"
)

func TestStatsRendersProfileAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("healers_wrapper_calls_total").Add(42)
	reg.Histogram("healers_sandbox_steps", []int64{10}).Observe(3)

	now := time.Unix(0, 0)
	spans := obs.NewSpans()
	spans.SetClock(func() time.Time { return now })
	stop := spans.Start("inject")
	now = now.Add(2 * time.Second)
	stop(86)

	out := Stats(reg, spans)
	for _, want := range []string{
		"Campaign profile — 1 phases, total 2s",
		"inject",
		"Metrics",
		"healers_wrapper_calls_total 42",
		`healers_sandbox_steps_bucket{le="10"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats output missing %q:\n%s", want, out)
		}
	}
}

func TestStatsEmptyInputs(t *testing.T) {
	if out := Stats(nil, nil); out != "" {
		t.Errorf("Stats(nil, nil) = %q, want empty", out)
	}
	out := Stats(obs.NewRegistry(), nil)
	if !strings.Contains(out, "(no metrics registered)") {
		t.Errorf("empty registry render = %q", out)
	}
}

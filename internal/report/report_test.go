package report

import (
	"strings"
	"testing"

	"healers/internal/clib"
	"healers/internal/corpus"
	"healers/internal/extract"
	"healers/internal/injector"
)

func campaign(t *testing.T) (*extract.Result, *injector.Campaign) {
	t.Helper()
	lib := clib.New()
	ext, err := extract.Run(corpus.Build(lib))
	if err != nil {
		t.Fatal(err)
	}
	// A small set keeps the test fast; the renderers only need shape.
	c, err := injector.New(lib, injector.DefaultConfig()).InjectAll(ext,
		[]string{"asctime", "strcpy", "fdopen", "rewind", "close"})
	if err != nil {
		t.Fatal(err)
	}
	return ext, c
}

func TestExtractionReport(t *testing.T) {
	ext, _ := campaign(t)
	out := Extraction(ext.Stats)
	for _, want := range []string{"51.1%", "96.0%", "internal", "prototypes found"} {
		if !strings.Contains(out, want) {
			t.Errorf("extraction report missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Report(t *testing.T) {
	_, c := campaign(t)
	out := Table1(c)
	for _, want := range []string{"No Return Code", "Consistent", "Inconsistent", "fdopen"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 report missing %q:\n%s", want, out)
		}
	}
}

func TestDeclarationsReport(t *testing.T) {
	_, c := campaign(t)
	out := Declarations(c)
	if !strings.Contains(out, "asctime") || !strings.Contains(out, "R_ARRAY") {
		t.Errorf("declarations report:\n%s", out)
	}
	if !strings.Contains(out, "close") || !strings.Contains(out, "safe") {
		t.Errorf("safe function missing:\n%s", out)
	}
}

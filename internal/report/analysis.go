package report

import (
	"fmt"
	"strings"

	"healers/internal/analysis"
)

// Analysis renders the static-vs-dynamic agreement table: one row per
// argument with the predicted robust type next to the type the
// fault-injection campaign discovered, then the corpus rollup, the
// seeding ablation, and the wrapper-verification verdict.
func Analysis(r *analysis.Report) string {
	var b strings.Builder
	b.WriteString("Static robust-type prediction vs fault injection\n")
	fmt.Fprintf(&b, "  %-14s %-4s %-22s %-22s %-22s %s\n",
		"function", "arg", "c type", "predicted", "dynamic", "agreement")
	for _, fr := range r.Funcs {
		for _, a := range fr.Args {
			name := fr.Name
			if a.Index > 0 {
				name = ""
			}
			fmt.Fprintf(&b, "  %-14s %-4d %-22s %-22s %-22s %s\n",
				name, a.Index, a.CType, a.Predicted, a.Dynamic, a.Agreement)
		}
	}

	s := r.Summary
	b.WriteString("\nAgreement summary\n")
	pct := func(n int) float64 {
		if s.Args == 0 {
			return 0
		}
		return 100 * float64(n) / float64(s.Args)
	}
	fmt.Fprintf(&b, "  functions analyzed   %5d\n", s.Funcs)
	fmt.Fprintf(&b, "  arguments            %5d\n", s.Args)
	fmt.Fprintf(&b, "  exact                %5d %5.1f%%\n", s.Exact, pct(s.Exact))
	fmt.Fprintf(&b, "  weaker (sound)       %5d %5.1f%%\n", s.Weaker, pct(s.Weaker))
	fmt.Fprintf(&b, "  unknown (declined)   %5d %5.1f%%\n", s.Unknown, pct(s.Unknown))
	fmt.Fprintf(&b, "  wrong (unsound)      %5d %5.1f%%\n", s.Wrong, pct(s.Wrong))

	b.WriteString("\nSeeded injection ablation\n")
	fmt.Fprintf(&b, "  sandboxed calls cold   %6d\n", s.ColdCalls)
	fmt.Fprintf(&b, "  sandboxed calls seeded %6d\n", s.SeededCalls)
	fmt.Fprintf(&b, "  calls saved            %6d (%.1f%%)\n", s.SavedCalls(), 100*s.SavedFraction())
	fmt.Fprintf(&b, "  seed jumps/confirms/misses  %d/%d/%d\n",
		s.SeedJumps, s.SeedConfirms, s.SeedMisses)
	if s.AllVectorsIdentical {
		b.WriteString("  robust vectors: identical to cold campaign\n")
	} else {
		b.WriteString("  robust vectors: DIVERGED from cold campaign\n")
	}

	b.WriteString("\nWrapper verification\n")
	fmt.Fprintf(&b, "  wrappers checked  %d\n", s.WrappersChecked)
	if len(s.WrapperIssues) == 0 {
		b.WriteString("  issues: none\n")
	} else {
		for _, issue := range s.WrapperIssues {
			fmt.Fprintf(&b, "  issue: %s\n", issue)
		}
	}
	return b.String()
}

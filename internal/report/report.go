// Package report renders the paper's tables and statistics as text for
// the command-line tools and the benchmark harness.
package report

import (
	"fmt"
	"sort"
	"strings"

	"healers/internal/extract"
	"healers/internal/injector"
	"healers/internal/obs"
)

// Extraction renders the §3 statistics next to the paper's values.
func Extraction(s extract.Stats) string {
	var b strings.Builder
	b.WriteString("Extraction statistics (measured | paper §3)\n")
	fmt.Fprintf(&b, "  global functions            %6d |    —\n", s.Total)
	fmt.Fprintf(&b, "  internal (leading _)        %5.1f%% | >34%%\n", 100*s.InternalFraction())
	fmt.Fprintf(&b, "  with manual page            %5.1f%% | 51.1%%\n", 100*s.ManCoverage())
	fmt.Fprintf(&b, "  man pages without headers   %5.1f%% |  1.2%%\n", 100*s.ManNoHeaderRate())
	fmt.Fprintf(&b, "  man pages with wrong headers%5.1f%% |  7.7%%\n", 100*s.ManWrongHeaderRate())
	fmt.Fprintf(&b, "  prototypes found            %5.1f%% | 96.0%%\n", 100*s.FoundRate())
	fmt.Fprintf(&b, "  found via man page          %6d |    —\n", s.FoundViaMan)
	fmt.Fprintf(&b, "  found via header search     %6d |    —\n", s.FoundViaSearch)
	return b.String()
}

// Table1 renders the error-return-code classification next to the
// paper's Table 1.
func Table1(c *injector.Campaign) string {
	t := c.Table1()
	pct := func(n int) float64 {
		if t.Total() == 0 {
			return 0
		}
		return 100 * float64(n) / float64(t.Total())
	}
	var b strings.Builder
	b.WriteString("Table 1 — error return code determination (measured | paper)\n")
	fmt.Fprintf(&b, "  %-30s %4d %5.1f%% |  8  9.3%%\n", "No Return Code", t.NoReturn, pct(t.NoReturn))
	fmt.Fprintf(&b, "  %-30s %4d %5.1f%% | 39 45.3%%\n", "Consistent Error Return Code", t.Consistent, pct(t.Consistent))
	fmt.Fprintf(&b, "  %-30s %4d %5.1f%% |  2  2.3%%\n", "Inconsistent Error Return Code", t.Inconsistent, pct(t.Inconsistent))
	fmt.Fprintf(&b, "  %-30s %4d %5.1f%% | 37 43.0%%\n", "No Error Return Code Found", t.NotFound, pct(t.NotFound))
	fmt.Fprintf(&b, "  inconsistent functions: %s (paper: fdopen, freopen)\n",
		strings.Join(c.InconsistentNames(), ", "))
	fmt.Fprintf(&b, "  unsafe functions: %d of %d\n", c.UnsafeCount(), t.Total())
	return b.String()
}

// Stats renders the observability report of a campaign: the per-phase
// profile first (when spans were collected), then the latency quantiles
// of every populated histogram, then every registered counter, gauge,
// and histogram in exposition format.
func Stats(reg *obs.Registry, spans *obs.Spans) string {
	var b strings.Builder
	if prof := spans.Report(); prof != "" {
		b.WriteString(prof)
		b.WriteByte('\n')
	}
	if reg != nil {
		if q := Quantiles(reg); q != "" {
			b.WriteString(q)
			b.WriteByte('\n')
		}
		b.WriteString("Metrics\n")
		exp := reg.Exposition()
		if exp == "" {
			b.WriteString("  (no metrics registered)\n")
		} else {
			b.WriteString(exp)
		}
	}
	return b.String()
}

// Quantiles renders p50/p95/p99 for every populated histogram, with the
// exemplar trace ID of the last observation when one was recorded — the
// bridge from an aggregate ("p99 fork is 210µs") to one concrete trace
// that can be pulled up in a viewer. Empty when no histogram has data.
func Quantiles(reg *obs.Registry) string {
	snap := reg.Snapshot()
	if len(snap.Histograms) == 0 {
		return ""
	}
	names := make([]string, 0, len(snap.Histograms))
	for name, h := range snap.Histograms {
		if h.Count > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("Latency quantiles (bucket-interpolated)\n")
	for _, name := range names {
		h := snap.Histograms[name]
		fmt.Fprintf(&b, "  %-28s n=%-6d p50=%-8d p95=%-8d p99=%-8d",
			name, h.Count, h.P50, h.P95, h.P99)
		if h.Exemplar != nil {
			fmt.Fprintf(&b, " exemplar=%d@trace %016x", h.Exemplar.Value, h.Exemplar.Trace)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Declarations renders every unsafe declaration's robust types on one
// line each, sorted.
func Declarations(c *injector.Campaign) string {
	var b strings.Builder
	for _, name := range c.Order {
		r := c.Results[name]
		d := r.Decl
		var args []string
		for _, a := range d.Args {
			args = append(args, a.Robust.String())
		}
		fmt.Fprintf(&b, "%-14s %-6s (%s) errno-class=%s\n",
			name, d.Attribute, strings.Join(args, ", "), d.ErrClass)
	}
	return b.String()
}

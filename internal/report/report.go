// Package report renders the paper's tables and statistics as text for
// the command-line tools and the benchmark harness.
package report

import (
	"fmt"
	"strings"

	"healers/internal/extract"
	"healers/internal/injector"
	"healers/internal/obs"
)

// Extraction renders the §3 statistics next to the paper's values.
func Extraction(s extract.Stats) string {
	var b strings.Builder
	b.WriteString("Extraction statistics (measured | paper §3)\n")
	fmt.Fprintf(&b, "  global functions            %6d |    —\n", s.Total)
	fmt.Fprintf(&b, "  internal (leading _)        %5.1f%% | >34%%\n", 100*s.InternalFraction())
	fmt.Fprintf(&b, "  with manual page            %5.1f%% | 51.1%%\n", 100*s.ManCoverage())
	fmt.Fprintf(&b, "  man pages without headers   %5.1f%% |  1.2%%\n", 100*s.ManNoHeaderRate())
	fmt.Fprintf(&b, "  man pages with wrong headers%5.1f%% |  7.7%%\n", 100*s.ManWrongHeaderRate())
	fmt.Fprintf(&b, "  prototypes found            %5.1f%% | 96.0%%\n", 100*s.FoundRate())
	fmt.Fprintf(&b, "  found via man page          %6d |    —\n", s.FoundViaMan)
	fmt.Fprintf(&b, "  found via header search     %6d |    —\n", s.FoundViaSearch)
	return b.String()
}

// Table1 renders the error-return-code classification next to the
// paper's Table 1.
func Table1(c *injector.Campaign) string {
	t := c.Table1()
	pct := func(n int) float64 {
		if t.Total() == 0 {
			return 0
		}
		return 100 * float64(n) / float64(t.Total())
	}
	var b strings.Builder
	b.WriteString("Table 1 — error return code determination (measured | paper)\n")
	fmt.Fprintf(&b, "  %-30s %4d %5.1f%% |  8  9.3%%\n", "No Return Code", t.NoReturn, pct(t.NoReturn))
	fmt.Fprintf(&b, "  %-30s %4d %5.1f%% | 39 45.3%%\n", "Consistent Error Return Code", t.Consistent, pct(t.Consistent))
	fmt.Fprintf(&b, "  %-30s %4d %5.1f%% |  2  2.3%%\n", "Inconsistent Error Return Code", t.Inconsistent, pct(t.Inconsistent))
	fmt.Fprintf(&b, "  %-30s %4d %5.1f%% | 37 43.0%%\n", "No Error Return Code Found", t.NotFound, pct(t.NotFound))
	fmt.Fprintf(&b, "  inconsistent functions: %s (paper: fdopen, freopen)\n",
		strings.Join(c.InconsistentNames(), ", "))
	fmt.Fprintf(&b, "  unsafe functions: %d of %d\n", c.UnsafeCount(), t.Total())
	return b.String()
}

// Stats renders the observability report of a campaign: the per-phase
// profile first (when spans were collected), then every registered
// counter, gauge, and histogram in exposition format.
func Stats(reg *obs.Registry, spans *obs.Spans) string {
	var b strings.Builder
	if prof := spans.Report(); prof != "" {
		b.WriteString(prof)
		b.WriteByte('\n')
	}
	if reg != nil {
		b.WriteString("Metrics\n")
		exp := reg.Exposition()
		if exp == "" {
			b.WriteString("  (no metrics registered)\n")
		} else {
			b.WriteString(exp)
		}
	}
	return b.String()
}

// Declarations renders every unsafe declaration's robust types on one
// line each, sorted.
func Declarations(c *injector.Campaign) string {
	var b strings.Builder
	for _, name := range c.Order {
		r := c.Results[name]
		d := r.Decl
		var args []string
		for _, a := range d.Args {
			args = append(args, a.Robust.String())
		}
		fmt.Fprintf(&b, "%-14s %-6s (%s) errno-class=%s\n",
			name, d.Attribute, strings.Join(args, ", "), d.ErrClass)
	}
	return b.String()
}

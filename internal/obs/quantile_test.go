package obs

import "testing"

func TestHistogramQuantileInterpolation(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_test", []int64{10, 20, 30})

	// Four observations land in the (10, 20] bucket; the median
	// interpolates linearly inside it.
	for i := 0; i < 4; i++ {
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("Quantile(0.5) = %d, want interpolated 15", got)
	}
	// All mass in one bucket: q=1 reaches the bucket's upper bound.
	if got := h.Quantile(1); got != 20 {
		t.Errorf("Quantile(1) = %d, want 20", got)
	}

	// Spread mass across buckets: 4 in (10,20], 4 in (20,30].
	for i := 0; i < 4; i++ {
		h.Observe(25)
	}
	if got := h.Quantile(0.5); got != 20 {
		t.Errorf("Quantile(0.5) after spread = %d, want bucket edge 20", got)
	}
	if got := h.Quantile(0.75); got != 25 {
		t.Errorf("Quantile(0.75) = %d, want 25", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_edges", []int64{10, 20})

	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %d, want 0", got)
	}
	h.Observe(5)
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %d, want 0", got)
	}

	// Overflow observations clamp to the largest finite bound rather
	// than inventing a number beyond the histogram's resolution.
	h.Observe(1000)
	h.Observe(1000)
	if got := h.Quantile(0.99); got != 20 {
		t.Errorf("overflow Quantile(0.99) = %d, want clamp to 20", got)
	}
}

func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_exemplar", []int64{10})

	if h.Exemplar() != nil {
		t.Fatal("fresh histogram has an exemplar")
	}
	// Observations without a trace leave no exemplar behind.
	h.ObserveEx(5, 0)
	if h.Exemplar() != nil {
		t.Fatal("trace-less observation stored an exemplar")
	}
	h.ObserveEx(7, 0xabc)
	ex := h.Exemplar()
	if ex == nil || ex.Trace != 0xabc || ex.Value != 7 {
		t.Fatalf("exemplar = %+v, want {Trace: 0xabc, Value: 7}", ex)
	}
	// The latest traced observation wins.
	h.ObserveEx(9, 0xdef)
	if ex := h.Exemplar(); ex.Trace != 0xdef || ex.Value != 9 {
		t.Fatalf("exemplar after second trace = %+v", ex)
	}
	// A later untraced observation does not erase the exemplar.
	h.ObserveEx(11, 0)
	if ex := h.Exemplar(); ex == nil || ex.Trace != 0xdef {
		t.Fatalf("untraced observation clobbered the exemplar: %+v", ex)
	}
}

func TestSnapshotCarriesQuantilesAndExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_snap", []int64{10, 100})
	h.ObserveEx(50, 0x77)
	h.Observe(50)

	snap := reg.Snapshot()
	hs, ok := snap.Histograms["q_snap"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.P50 == 0 || hs.P95 == 0 || hs.P99 == 0 {
		t.Errorf("snapshot quantiles not filled: p50=%d p95=%d p99=%d", hs.P50, hs.P95, hs.P99)
	}
	if hs.Exemplar == nil || hs.Exemplar.Trace != 0x77 {
		t.Errorf("snapshot exemplar = %+v, want trace 0x77", hs.Exemplar)
	}
}

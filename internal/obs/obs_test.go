package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestTracerSequenceAndFanOutOrder(t *testing.T) {
	var order []string
	a := FuncSink(func(e Event) { order = append(order, "a") })
	b := FuncSink(func(e Event) { order = append(order, "b") })
	tr := New(a)
	tr.Attach(b)

	if !tr.Enabled() {
		t.Fatal("tracer with sinks should be enabled")
	}
	tr.Emit(Event{Kind: KindWrapperCall, Func: "strcpy"})
	tr.Emit(Event{Kind: KindWrapperCall, Func: "strlen"})

	// Every event visits every sink in attachment order.
	want := []string{"a", "b", "a", "b"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("fan-out order = %v, want %v", order, want)
	}
	if tr.Seq() != 2 {
		t.Fatalf("Seq() = %d, want 2", tr.Seq())
	}
}

func TestTracerAssignsMonotonicSeq(t *testing.T) {
	var seqs []uint64
	tr := New(FuncSink(func(e Event) { seqs = append(seqs, e.Seq) }))
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: KindInjectionProbe})
	}
	if !reflect.DeepEqual(seqs, []uint64{1, 2, 3, 4, 5}) {
		t.Fatalf("seqs = %v", seqs)
	}
}

func TestNopAndNilTracerDisabled(t *testing.T) {
	var nilTr *Tracer
	if nilTr.Enabled() {
		t.Error("nil tracer should be disabled")
	}
	nilTr.Emit(Event{Kind: KindWrapperCall}) // must not panic
	if nilTr.Seq() != 0 {
		t.Error("nil tracer Seq should be 0")
	}
	if Nop().Enabled() {
		t.Error("Nop tracer should be disabled")
	}
	if New().Enabled() {
		t.Error("sinkless tracer should be disabled")
	}
}

func TestNopTracerEmitAllocatesNothing(t *testing.T) {
	tr := Nop()
	allocs := testing.AllocsPerRun(100, func() {
		if tr.Enabled() {
			t.Fatal("nop tracer enabled")
		}
		tr.Emit(Event{Kind: KindSandboxOutcome, Func: "strcpy", Outcome: "return"})
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %v per call, want 0", allocs)
	}
}

func TestNilRegistryInstrumentsAllocateNothingPerOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []int64{1, 10})
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(7)
		h.Observe(5)
	})
	if allocs != 0 {
		t.Fatalf("detached instrument ops allocate %v per run, want 0", allocs)
	}
	if c.Value() == 0 || h.Count() == 0 {
		t.Fatal("detached instruments must still function")
	}
}

func TestKindTextRoundTrip(t *testing.T) {
	for k := KindInjectionProbe; k <= KindTestOutcome; k++ {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%d): %v", k, err)
		}
		var back Kind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != k {
			t.Fatalf("round trip %d -> %q -> %d", k, text, back)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("no-such-kind")); err == nil {
		t.Fatal("unknown kind name should not parse")
	}
	if _, err := Kind(200).MarshalText(); err == nil {
		t.Fatal("unknown kind value should not marshal")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindInjectionProbe, Func: "memcpy", Arg: 1, Probe: "RW_FIXED[3], RONLY_FIXED[0], INT_16"},
		{Kind: KindArgAdjust, Func: "memcpy", Arg: 0, Probe: "RW_FIXED[3]", Detail: "RW_FIXED[4]", Addr: 0x2000},
		{Kind: KindSandboxOutcome, Func: "memcpy", Outcome: "segfault", Addr: 0xdead0000, Steps: 42},
		{Kind: KindSandboxOutcome, Func: "close", Outcome: "return", Ret: ^uint64(0), Errno: 9, Err: "EBADF"},
		{Kind: KindCheckViolation, Func: "strcpy", Arg: 1, Probe: "CSTR", Detail: "unreadable",
			Errno: 14, Err: "EFAULT", Policy: "return-error"},
		{Kind: KindWrapperCall, Func: "fclose", Outcome: "checked", Steps: 12},
		{Kind: KindCampaignPhase, Phase: "inject", Func: "abs", N: 3, Total: 86},
		{Kind: KindTestOutcome, Config: "full-auto", Func: "fgets", Probe: "BUF, INT, FILE", Outcome: "errno-set"},
	}

	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	for _, e := range events {
		tr.Emit(e)
	}

	parsed, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(events))
	}
	for i, e := range events {
		e.Seq = uint64(i + 1) // the tracer stamps sequence numbers
		if !reflect.DeepEqual(parsed[i], e) {
			t.Errorf("event %d round trip:\n got %+v\nwant %+v", i, parsed[i], e)
		}
	}
}

func TestParseJSONLErrors(t *testing.T) {
	if _, err := ParseJSONL(strings.NewReader("{\"seq\":1,\"kind\":\"wrapper-call\"}\nnot json\n")); err == nil {
		t.Fatal("malformed line should fail")
	}
	events, err := ParseJSONL(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Fatalf("blank lines: events=%v err=%v", events, err)
	}
}

func TestRingSinkOverwrite(t *testing.T) {
	ring := NewRingSink(4)
	tr := New(ring)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindTestOutcome, N: i})
	}
	got := ring.Events()
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(got))
	}
	// Oldest-first tail of the stream: N = 6, 7, 8, 9.
	for i, e := range got {
		if e.N != 6+i {
			t.Errorf("ring[%d].N = %d, want %d", i, e.N, 6+i)
		}
		if e.Seq != uint64(7+i) {
			t.Errorf("ring[%d].Seq = %d, want %d", i, e.Seq, 7+i)
		}
	}
	if ring.Total() != 10 {
		t.Fatalf("Total() = %d, want 10", ring.Total())
	}
}

func TestRingSinkPartialFill(t *testing.T) {
	ring := NewRingSink(8)
	ring.Emit(Event{N: 1})
	ring.Emit(Event{N: 2})
	got := ring.Events()
	if len(got) != 2 || got[0].N != 1 || got[1].N != 2 {
		t.Fatalf("partial ring = %+v", got)
	}
	if NewRingSink(0) == nil {
		t.Fatal("capacity 0 should clamp, not fail")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]int64{10, 100})
	// le semantics: a value equal to a bound lands in that bound's bucket.
	for _, v := range []int64{0, 5, 10} {
		h.Observe(v)
	}
	for _, v := range []int64{11, 100} {
		h.Observe(v)
	}
	h.Observe(101) // +Inf overflow

	bounds, buckets := h.Snapshot()
	if !reflect.DeepEqual(bounds, []int64{10, 100}) {
		t.Fatalf("bounds = %v", bounds)
	}
	if !reflect.DeepEqual(buckets, []int64{3, 2, 1}) {
		t.Fatalf("buckets = %v, want [3 2 1]", buckets)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 0+5+10+11+100+101 {
		t.Fatalf("Sum = %d", h.Sum())
	}
}

func TestHistogramSortsBounds(t *testing.T) {
	h := newHistogram([]int64{100, 10}) // deliberately unsorted
	h.Observe(50)
	bounds, buckets := h.Snapshot()
	if !reflect.DeepEqual(bounds, []int64{10, 100}) {
		t.Fatalf("bounds not sorted: %v", bounds)
	}
	if !reflect.DeepEqual(buckets, []int64{0, 1, 0}) {
		t.Fatalf("buckets = %v", buckets)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Error("same name should return same counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same name should return same gauge")
	}
	h1 := r.Histogram("h", []int64{1, 2})
	h2 := r.Histogram("h", []int64{9, 99}) // bounds ignored on reuse
	if h1 != h2 {
		t.Error("same name should return same histogram")
	}
	bounds, _ := h2.Snapshot()
	if !reflect.DeepEqual(bounds, []int64{1, 2}) {
		t.Errorf("reused histogram lost its original bounds: %v", bounds)
	}
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("healers_calls_total").Add(5)
	r.Counter(`healers_outcomes_total{config="b"}`).Add(2)
	r.Counter(`healers_outcomes_total{config="a"}`).Add(1)
	r.Gauge("healers_depth").Set(-3)
	h := r.Histogram("healers_steps", []int64{10, 100})
	h.Observe(7)
	h.Observe(10)
	h.Observe(55)
	h.Observe(1000)

	want := `# TYPE healers_calls_total counter
healers_calls_total 5
# TYPE healers_outcomes_total counter
healers_outcomes_total{config="a"} 1
healers_outcomes_total{config="b"} 2
# TYPE healers_depth gauge
healers_depth -3
# TYPE healers_steps histogram
healers_steps_bucket{le="10"} 2
healers_steps_bucket{le="100"} 3
healers_steps_bucket{le="+Inf"} 4
healers_steps_sum 1072
healers_steps_count 4
`
	if got := r.Exposition(); got != want {
		t.Errorf("Exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpositionNilAndEmpty(t *testing.T) {
	var nilReg *Registry
	if nilReg.Exposition() != "" {
		t.Error("nil registry exposition should be empty")
	}
	if NewRegistry().Exposition() != "" {
		t.Error("empty registry exposition should be empty")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-1)
	r.Histogram("h", []int64{5}).Observe(4)

	data, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["c"] != 3 || s.Gauges["g"] != -1 {
		t.Fatalf("snapshot = %+v", s)
	}
	hs := s.Histograms["h"]
	if hs.Count != 1 || hs.Sum != 4 || !reflect.DeepEqual(hs.Buckets, []int64{1, 0}) {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}

func TestSpansReportWithFakeClock(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewSpans()
	s.SetClock(func() time.Time { return now })

	stop := s.Start("inject")
	now = now.Add(1 * time.Second)
	stop(86)

	stop = s.Start("evaluate")
	now = now.Add(3 * time.Second)
	stop(0)

	spans := s.List()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "inject" || spans[0].Dur != time.Second || spans[0].Items != 86 {
		t.Fatalf("span[0] = %+v", spans[0])
	}

	report := s.Report()
	for _, want := range []string{
		"Campaign profile — 2 phases, total 4s",
		"inject", "1s", "25.0%", "(86 items, 86/s)",
		"evaluate", "3s", "75.0%",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestNilSpansAreNoOps(t *testing.T) {
	var s *Spans
	s.SetClock(nil)
	s.Start("x")(1)
	if s.List() != nil || s.Report() != "" {
		t.Fatal("nil Spans should report nothing")
	}
}

func TestLegacyViolationSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := New(LegacyViolationSink(&buf))
	tr.Emit(Event{Kind: KindWrapperCall, Func: "strlen"}) // filtered out
	tr.Emit(Event{
		Kind: KindCheckViolation, Func: "strlen", Arg: 0, Probe: "CSTR",
		Detail: "unreadable or unterminated string", Errno: 14, Err: "EFAULT",
		Policy: "return-error",
	})
	want := "healers: strlen arg0 violates CSTR: unreadable or unterminated string\n"
	if got := buf.String(); got != want {
		t.Fatalf("legacy line = %q, want %q", got, want)
	}
}

func TestTextSinkRendersEventString(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewTextSink(&buf))
	tr.Emit(Event{Kind: KindSandboxOutcome, Func: "asctime", Probe: "NULL",
		Outcome: "return", Ret: 0, Err: "EINVAL"})
	want := "#1 asctime(NULL) -> return 0x0 (errno EINVAL) [0 steps]\n"
	if got := buf.String(); got != want {
		t.Fatalf("text line = %q, want %q", got, want)
	}
}

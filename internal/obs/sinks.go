package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONLSink encodes every event as one JSON object per line. The
// stream is the archival trace format: `healers table1 -trace out.jsonl`
// writes it, ParseJSONL reads it back.
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing JSON lines to w. The caller owns
// w's lifetime (and closing, for files).
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink. Encoding errors are swallowed: tracing must
// never turn an experiment outcome into a harness failure.
func (s *JSONLSink) Emit(e Event) { _ = s.enc.Encode(e) }

// ParseJSONL decodes a JSONL trace back into events, in stream order.
// Blank lines are skipped; a malformed line is an error.
func ParseJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}

// TextSink renders each event as one human-readable line (Event.String).
type TextSink struct {
	w io.Writer
}

// NewTextSink returns a sink writing rendered lines to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit implements Sink.
func (s *TextSink) Emit(e Event) { fmt.Fprintln(s.w, e.String()) }

// RingSink keeps the most recent capacity events for post-mortem
// dumps: when a campaign dies, the ring holds the tail of the trace
// without having paid for the whole stream. Older events are
// overwritten silently; Total reports how many were ever emitted.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewRingSink returns a ring holding the last capacity events
// (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Emit implements Sink.
func (s *RingSink) Emit(e Event) {
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, e)
	} else {
		s.buf[s.next] = e
		s.next = (s.next + 1) % cap(s.buf)
	}
	s.total++
	s.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Total returns how many events were emitted into the ring overall,
// including overwritten ones.
func (s *RingSink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// LegacyViolationSink renders KindCheckViolation events in the exact
// pre-obs wrapper log format ("healers: F argN violates T: reason"),
// ignoring every other kind. It exists so consumers of the old
// Options.Log line format keep a byte-identical stream.
func LegacyViolationSink(w io.Writer) Sink {
	return FuncSink(func(e Event) {
		if e.Kind != KindCheckViolation {
			return
		}
		fmt.Fprintf(w, "healers: %s arg%d violates %s: %s\n", e.Func, e.Arg, e.Probe, e.Detail)
	})
}

package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket integer histogram: bounds are inclusive
// upper bounds ("le" semantics), with an implicit +Inf bucket at the
// end. Observations are lock-free atomic adds.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1, non-cumulative
	count   atomic.Int64
	sum     atomic.Int64
	// exemplar is the most recent span-scoped observation — a trace ID
	// plus the value it observed — so a tail-latency bucket links back
	// to a concrete campaign trace instead of an anonymous count.
	exemplar atomic.Pointer[HistExemplar]
}

// HistExemplar ties one observed value to the trace it came from.
type HistExemplar struct {
	Trace uint64 `json:"trace"`
	Value int64  `json:"value"`
}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveEx records one value and, when trace is nonzero, publishes it
// as the histogram's exemplar.
func (h *Histogram) ObserveEx(v int64, trace uint64) {
	h.Observe(v)
	if trace != 0 {
		h.exemplar.Store(&HistExemplar{Trace: trace, Value: v})
	}
}

// Exemplar returns the most recent span-scoped observation, or nil if
// none was recorded.
func (h *Histogram) Exemplar() *HistExemplar { return h.exemplar.Load() }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket that crosses the target rank — the
// standard Prometheus histogram_quantile estimate. The lowest bucket
// interpolates from 0 and the +Inf bucket clamps to the highest finite
// bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: the best point estimate is the largest
				// finite bound (or 0 with no finite buckets at all).
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Snapshot returns the bounds and per-bucket (non-cumulative) counts;
// the final bucket is the +Inf overflow.
func (h *Histogram) Snapshot() (bounds []int64, buckets []int64) {
	bounds = append([]int64(nil), h.bounds...)
	buckets = make([]int64, len(h.buckets))
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return bounds, buckets
}

// Registry is a named collection of counters, gauges, and histograms
// with a Prometheus-style text exposition and a JSON snapshot. All
// accessor methods are get-or-create and nil-safe: calling them on a
// nil *Registry returns a detached, fully functional instrument, so
// instrumented code never branches on whether metrics are enabled.
//
// Metric names may carry Prometheus-style labels in the name itself
// (`healers_ballista_outcomes_total{config="full-auto"}`); the
// exposition groups such series under one TYPE header per family.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. An existing histogram keeps its original
// bounds regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// family strips a name's label block, so labeled series group under
// one TYPE line.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Exposition renders every metric in the Prometheus text format,
// sorted by name, histograms with cumulative le buckets.
func (r *Registry) Exposition() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	var b strings.Builder
	emitFamily := func(names []string, kind string, write func(name string)) {
		sort.Strings(names)
		lastFam := ""
		for _, name := range names {
			if f := family(name); f != lastFam {
				fmt.Fprintf(&b, "# TYPE %s %s\n", f, kind)
				lastFam = f
			}
			write(name)
		}
	}

	counterNames := make([]string, 0, len(r.counters))
	for name := range r.counters {
		counterNames = append(counterNames, name)
	}
	emitFamily(counterNames, "counter", func(name string) {
		fmt.Fprintf(&b, "%s %d\n", name, r.counters[name].Value())
	})

	gaugeNames := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gaugeNames = append(gaugeNames, name)
	}
	emitFamily(gaugeNames, "gauge", func(name string) {
		fmt.Fprintf(&b, "%s %d\n", name, r.gauges[name].Value())
	})

	histNames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		histNames = append(histNames, name)
	}
	emitFamily(histNames, "histogram", func(name string) {
		h := r.hists[name]
		bounds, buckets := h.Snapshot()
		cum := int64(0)
		for i, bound := range bounds {
			cum += buckets[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
		}
		cum += buckets[len(buckets)-1]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&b, "%s_sum %d\n", name, h.Sum())
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count())
	})

	return b.String()
}

// HistogramSnapshot is one histogram's state in a Snapshot.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	// Buckets are non-cumulative; the final entry is the +Inf overflow.
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	// P50/P95/P99 are bucket-interpolated quantile estimates.
	P50 int64 `json:"p50,omitempty"`
	P95 int64 `json:"p95,omitempty"`
	P99 int64 `json:"p99,omitempty"`
	// Exemplar links the histogram to a recent contributing trace.
	Exemplar *HistExemplar `json:"exemplar,omitempty"`
}

// Snapshot is a point-in-time copy of every metric, the JSON companion
// to Exposition.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry state.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			bounds, buckets := h.Snapshot()
			s.Histograms[name] = HistogramSnapshot{
				Bounds: bounds, Buckets: buckets, Count: h.Count(), Sum: h.Sum(),
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
				Exemplar: h.Exemplar(),
			}
		}
	}
	return s
}

// SnapshotJSON renders the snapshot as indented JSON.
func (r *Registry) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

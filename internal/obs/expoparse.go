package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseExposition parses the Prometheus text format Exposition emits
// back into a name → value map — the read half of the metrics
// round-trip. It exists for the crash/stress oracle (cmd/crashtest)
// and e2e tests, which verify counter invariants like
// hits+misses+joins == lookups by scraping a live /metrics endpoint;
// it is not a general Prometheus parser. Names keep their label block
// verbatim (`healers_http_requests_total{method="POST",...}`), exactly
// as the registry stores them; histogram series appear under their
// exposition names (_bucket{le="..."}, _sum, _count). Every value the
// registry renders is an integer; a malformed line is an error, since
// a scrape that half-parses would silently weaken the oracle.
func ParseExposition(text string) (map[string]int64, error) {
	m := make(map[string]int64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("obs: unparseable exposition line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %q: %w", line, err)
		}
		m[name] = v
	}
	return m, nil
}

package obs

import (
	"encoding/json"
	"fmt"
)

// Chrome trace-event export: the recorded event stream of one campaign
// rendered in the trace-event JSON format that Perfetto
// (ui.perfetto.dev) and chrome://tracing load directly. Timed spans
// become complete ("X") events, point observations become instant
// ("i") events, and every entry carries its causal IDs in args so the
// tree survives the export.

// ChromeTraceEvent is one entry of the trace-event format's
// "JSON array format" (the subset every viewer supports).
type ChromeTraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Ph is the event phase: "X" complete, "i" instant, "M" metadata.
	Ph string `json:"ph"`
	// TS is microseconds; Dur only applies to "X" events.
	TS  int64 `json:"ts"`
	Dur int64 `json:"dur,omitempty"`
	PID int64 `json:"pid"`
	TID int64 `json:"tid"`
	// S scopes instant events ("t" = thread).
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON object format envelope.
type ChromeTrace struct {
	TraceEvents     []ChromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit,omitempty"`
}

// chromeLane picks the track a span renders on. Spans draw on their
// parent's lane — a worker's function campaigns stack on the worker
// track, a function's probes on the function track — which keeps the
// lane count at tree fan-out, not tree size. Root spans get lane 1.
func chromeLane(e Event) int64 {
	if e.Parent != 0 {
		return int64(e.Parent)
	}
	return 1
}

// chromeArgs carries the causal identity through the export; the
// viewer shows them on click, and ValidateChromeTrace's consumers use
// them to rebuild the tree.
func chromeArgs(e Event) map[string]any {
	args := map[string]any{
		"trace":  fmt.Sprintf("%x", e.Trace),
		"span":   fmt.Sprintf("%x", e.Span),
		"parent": fmt.Sprintf("%x", e.Parent),
		"seq":    e.Seq,
	}
	if e.Func != "" {
		args["func"] = e.Func
	}
	if e.Outcome != "" {
		args["outcome"] = e.Outcome
	}
	if e.Probe != "" {
		args["probe"] = e.Probe
	}
	return args
}

// BuildChromeTrace converts a recorded event stream to the trace-event
// format. Events without timing (TS == 0) that are not spans or
// outcomes are skipped — progress bookkeeping has no place on a
// timeline; the causal IDs of what remains are preserved in args.
func BuildChromeTrace(events []Event) *ChromeTrace {
	ct := &ChromeTrace{DisplayTimeUnit: "ms"}
	ct.TraceEvents = append(ct.TraceEvents, ChromeTraceEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": "healers campaign"},
	})
	for _, e := range events {
		switch e.Kind {
		case KindSpan:
			ct.TraceEvents = append(ct.TraceEvents, ChromeTraceEvent{
				Name: e.Phase,
				Cat:  "span",
				Ph:   "X",
				TS:   e.TS,
				Dur:  max64(e.DurUS, 1),
				PID:  1,
				TID:  chromeLane(e),
				Args: chromeArgs(e),
			})
		case KindSandboxOutcome:
			if e.TS == 0 {
				continue
			}
			ct.TraceEvents = append(ct.TraceEvents, ChromeTraceEvent{
				Name: fmt.Sprintf("%s → %s", e.Func, e.Outcome),
				Cat:  "probe",
				Ph:   "X",
				TS:   e.TS,
				Dur:  max64(e.DurUS, 1),
				PID:  1,
				TID:  chromeLane(e),
				Args: chromeArgs(e),
			})
		case KindArgAdjust, KindCheckViolation, KindTestOutcome, KindStaticSeed:
			if e.TS == 0 {
				continue
			}
			ct.TraceEvents = append(ct.TraceEvents, ChromeTraceEvent{
				Name: fmt.Sprintf("%s %s", e.Kind, e.Func),
				Cat:  "event",
				Ph:   "i",
				TS:   e.TS,
				PID:  1,
				TID:  chromeLane(e),
				S:    "t",
				Args: chromeArgs(e),
			})
		}
	}
	return ct
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MarshalChromeTrace renders the trace as the JSON object format.
func MarshalChromeTrace(events []Event) ([]byte, error) {
	return json.MarshalIndent(BuildChromeTrace(events), "", " ")
}

// validPhases are the trace-event phases this exporter may emit plus
// the other single-letter phases the format defines — the validator
// accepts the format, not just our subset.
var validPhases = map[string]bool{
	"B": true, "E": true, "X": true, "i": true, "I": true, "C": true,
	"b": true, "n": true, "e": true, "s": true, "t": true, "f": true,
	"P": true, "N": true, "O": true, "D": true, "M": true,
}

// ValidateChromeTrace checks data parses as the trace-event JSON
// object format: a traceEvents array whose entries each carry a string
// name, a known ph, a numeric non-negative ts, and numeric pid/tid.
// It returns the decoded events for further (semantic) assertions.
func ValidateChromeTrace(data []byte) ([]ChromeTraceEvent, error) {
	var raw struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("chrometrace: not a JSON object: %w", err)
	}
	if raw.TraceEvents == nil {
		return nil, fmt.Errorf("chrometrace: missing traceEvents array")
	}
	out := make([]ChromeTraceEvent, 0, len(raw.TraceEvents))
	for i, msg := range raw.TraceEvents {
		// Decode loosely first so a wrong-typed field is reported as
		// such rather than silently zeroed.
		var loose map[string]json.RawMessage
		if err := json.Unmarshal(msg, &loose); err != nil {
			return nil, fmt.Errorf("chrometrace: event %d: not an object: %w", i, err)
		}
		var e ChromeTraceEvent
		if err := json.Unmarshal(msg, &e); err != nil {
			return nil, fmt.Errorf("chrometrace: event %d: %w", i, err)
		}
		if _, ok := loose["name"]; !ok || e.Name == "" {
			return nil, fmt.Errorf("chrometrace: event %d: missing name", i)
		}
		if !validPhases[e.Ph] {
			return nil, fmt.Errorf("chrometrace: event %d: bad phase %q", i, e.Ph)
		}
		if _, ok := loose["ts"]; !ok {
			return nil, fmt.Errorf("chrometrace: event %d: missing ts", i)
		}
		if e.TS < 0 {
			return nil, fmt.Errorf("chrometrace: event %d: negative ts %d", i, e.TS)
		}
		if e.Ph == "X" && e.Dur < 0 {
			return nil, fmt.Errorf("chrometrace: event %d: negative dur %d", i, e.Dur)
		}
		out = append(out, e)
	}
	return out, nil
}

package obs

import (
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: KindSpan, Phase: "campaign", Trace: 7, Span: 10, TS: 1000, DurUS: 500, Seq: 1},
		{Kind: KindSpan, Phase: "inject", Func: "strlen", Trace: 7, Span: 11, Parent: 10, TS: 1100, DurUS: 200, Seq: 2},
		{Kind: KindInjectionProbe, Func: "strlen", Probe: "NULL", Trace: 7, Span: 12, Parent: 11, Seq: 3},
		{Kind: KindSandboxOutcome, Func: "strlen", Probe: "NULL", Outcome: "SIGSEGV",
			Trace: 7, Span: 12, Parent: 11, TS: 1150, DurUS: 30, Seq: 4},
		{Kind: KindArgAdjust, Func: "strlen", Trace: 7, Span: 12, Parent: 11, TS: 1180, Seq: 5},
		{Kind: KindCampaignPhase, Func: "strlen", N: 1, Total: 1, Seq: 6}, // untimed bookkeeping
	}
}

func TestBuildChromeTraceShape(t *testing.T) {
	ct := BuildChromeTrace(sampleEvents())

	if ct.TraceEvents[0].Ph != "M" || ct.TraceEvents[0].Name != "process_name" {
		t.Fatalf("first event must be process metadata, got %+v", ct.TraceEvents[0])
	}
	var spans, probes, instants int
	for _, e := range ct.TraceEvents[1:] {
		switch e.Cat {
		case "span":
			spans++
			if e.Ph != "X" || e.Dur <= 0 {
				t.Errorf("span event not a complete slice: %+v", e)
			}
		case "probe":
			probes++
			if !strings.Contains(e.Name, "→") {
				t.Errorf("probe slice name %q missing outcome arrow", e.Name)
			}
		case "event":
			instants++
			if e.Ph != "i" || e.S != "t" {
				t.Errorf("instant event malformed: %+v", e)
			}
		default:
			t.Errorf("unexpected category %q: %+v", e.Cat, e)
		}
	}
	// 2 spans, 1 timed outcome, 1 timed adjust. The probe event (the
	// outcome's duplicate) and the untimed progress event are skipped.
	if spans != 2 || probes != 1 || instants != 1 {
		t.Fatalf("got %d spans, %d probes, %d instants; want 2, 1, 1", spans, probes, instants)
	}

	// Causal IDs survive the export as hex args.
	inject := ct.TraceEvents[2]
	if inject.Args["span"] != "b" || inject.Args["parent"] != "a" || inject.Args["trace"] != "7" {
		t.Errorf("inject span args lost causal IDs: %v", inject.Args)
	}
	if inject.Args["func"] != "strlen" {
		t.Errorf("inject span args lost func: %v", inject.Args)
	}
}

func TestMarshalChromeTraceValidates(t *testing.T) {
	data, err := MarshalChromeTrace(sampleEvents())
	if err != nil {
		t.Fatal(err)
	}
	events, err := ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("exporter emitted an invalid trace: %v", err)
	}
	if len(events) != 5 {
		t.Fatalf("round trip returned %d events, want 5", len(events))
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not json", `[1,2`, "not a JSON object"},
		{"array format", `[{"name":"x","ph":"X","ts":1}]`, "not a JSON object"},
		{"missing traceEvents", `{"displayTimeUnit":"ms"}`, "missing traceEvents"},
		{"missing name", `{"traceEvents":[{"ph":"X","ts":1,"pid":1,"tid":1}]}`, "missing name"},
		{"empty name", `{"traceEvents":[{"name":"","ph":"X","ts":1,"pid":1,"tid":1}]}`, "missing name"},
		{"bad phase", `{"traceEvents":[{"name":"x","ph":"Z","ts":1,"pid":1,"tid":1}]}`, "bad phase"},
		{"missing ts", `{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":1}]}`, "missing ts"},
		{"negative ts", `{"traceEvents":[{"name":"x","ph":"X","ts":-5,"pid":1,"tid":1}]}`, "negative ts"},
		{"negative dur", `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":-2,"pid":1,"tid":1}]}`, "negative dur"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateChromeTrace([]byte(tc.data))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestChromeLaneAssignment(t *testing.T) {
	// Children render on the parent's lane; roots on lane 1.
	ct := BuildChromeTrace([]Event{
		{Kind: KindSpan, Phase: "campaign", Span: 20, TS: 1},
		{Kind: KindSpan, Phase: "inject", Span: 21, Parent: 20, TS: 2},
	})
	if root := ct.TraceEvents[1]; root.TID != 1 {
		t.Errorf("root span on lane %d, want 1", root.TID)
	}
	if child := ct.TraceEvents[2]; child.TID != 20 {
		t.Errorf("child span on lane %d, want parent's span ID 20", child.TID)
	}
}

package obs

import (
	"context"
	"sync"
	"sync/atomic"
)

// Causal tracing. A campaign is one trace; every phase of its execution
// — the HTTP submission, the campaign itself, each scheduler worker,
// each per-function injection, each forked probe — is one span in that
// trace, linked to its parent by ID. The IDs ride on trace events
// (Event.Trace/Span/Parent), so a recorded event stream reconstructs as
// one tree rooted at the campaign's origin, and exports losslessly to
// the Chrome trace-event format (chrometrace.go).
//
// Propagation invariants (asserted by tests, documented in DESIGN.md):
//
//   - IDs are assigned exactly once, by NewTrace (roots) and Child
//     (everything else); nothing ever rewrites a span's identity.
//   - A trace crosses process-fork boundaries by inheritance: the
//     template process's memory image carries its owning span's IDs
//     (cmem.Memory.TraceID/SpanID), cmem.Clone copies them, so every
//     COW fork is attributable to the span that forked its template.
//   - Worker sharding never reassigns spans: a function campaign's span
//     is parented to the worker span that ran it, which is parented to
//     the campaign span, so the tree is stable under any Workers value
//     — only the worker layer's fan-out differs.

// spanIDs hands out process-unique span and trace IDs. A plain counter
// (not randomness) keeps traces deterministic enough to diff; IDs only
// need uniqueness within a process lifetime.
var spanIDs atomic.Uint64

func nextID() uint64 { return spanIDs.Add(1) }

// SpanContext identifies one node of a campaign's causal tree.
// The zero value is "no span" (Valid reports false); instrumented code
// threads it unconditionally and only pays for it when tracing is on.
type SpanContext struct {
	// Trace identifies the tree; every span of one campaign shares it.
	Trace uint64
	// Span is this node's process-unique ID.
	Span uint64
	// Parent is the parent node's span ID; 0 marks the root.
	Parent uint64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// Child allocates a child span of sc. Calling Child on an invalid
// context starts a fresh trace, so call sites need not special-case
// "no incoming span".
func (sc SpanContext) Child() SpanContext {
	if !sc.Valid() {
		return NewTrace()
	}
	return SpanContext{Trace: sc.Trace, Span: nextID(), Parent: sc.Span}
}

// NewTrace allocates a root span beginning a new trace.
func NewTrace() SpanContext {
	return SpanContext{Trace: nextID(), Span: nextID()}
}

// Tag stamps the event with sc's identity and returns it — sugar for
// emit sites that build events inline.
func (sc SpanContext) Tag(e Event) Event {
	e.Trace, e.Span, e.Parent = sc.Trace, sc.Span, sc.Parent
	return e
}

// ctxKey is the context.Context key for span propagation.
type ctxKey struct{}

// ContextWithSpan returns a context carrying sc, the propagation
// vehicle from HTTP handlers down through campaign scheduling.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext extracts the propagated span, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// CollectSink retains every emitted event in order, bounded by cap —
// the buffer behind trace exports (the serve /trace endpoint and the
// CLI -trace-out flag). When the cap is reached further events are
// counted but not stored, so a runaway campaign degrades to a truncated
// trace instead of unbounded memory.
type CollectSink struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	dropped uint64
}

// DefaultCollectCap bounds a collected trace; a full 86-function
// campaign emits ~14k events, so the default keeps an order of
// magnitude of headroom.
const DefaultCollectCap = 262144

// NewCollectSink returns a collector retaining up to capacity events
// (<= 0 uses DefaultCollectCap).
func NewCollectSink(capacity int) *CollectSink {
	if capacity <= 0 {
		capacity = DefaultCollectCap
	}
	return &CollectSink{cap: capacity}
}

// Emit implements Sink.
func (s *CollectSink) Emit(e Event) {
	s.mu.Lock()
	if len(s.events) < s.cap {
		s.events = append(s.events, e)
	} else {
		s.dropped++
	}
	s.mu.Unlock()
}

// Events returns a copy of the retained events in emission order.
func (s *CollectSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Dropped reports how many events overflowed the cap.
func (s *CollectSink) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

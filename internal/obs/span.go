package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed campaign phase (extract → inject → wrap →
// evaluate in Fig. 1's pipeline).
type Span struct {
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur"`
	// Items is the optional unit count the phase processed (functions
	// injected, tests run); 0 means unreported.
	Items int `json:"items,omitempty"`
}

// Spans collects phase timings for the campaign progress report. Safe
// for concurrent use; the zero value is not valid, use NewSpans. A nil
// *Spans is a no-op on every method, so callers thread it through
// unconditionally.
type Spans struct {
	mu    sync.Mutex
	now   func() time.Time
	spans []Span
}

// NewSpans returns an empty span collector using wall-clock time.
func NewSpans() *Spans { return &Spans{now: time.Now} }

// SetClock replaces the time source (tests pin it for deterministic
// reports).
func (s *Spans) SetClock(now func() time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// Start begins a span and returns its stop function; items is the
// phase's processed unit count (0 if not meaningful). Stop must be
// called exactly once.
func (s *Spans) Start(name string) func(items int) {
	if s == nil {
		return func(int) {}
	}
	s.mu.Lock()
	start := s.now()
	s.mu.Unlock()
	return func(items int) {
		s.mu.Lock()
		s.spans = append(s.spans, Span{Name: name, Start: start, Dur: s.now().Sub(start), Items: items})
		s.mu.Unlock()
	}
}

// List returns the finished spans in completion order.
func (s *Spans) List() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Span(nil), s.spans...)
}

// Report renders the campaign profile: per-phase duration, share of
// total, and throughput where the phase reported item counts.
func (s *Spans) Report() string {
	spans := s.List()
	if len(spans) == 0 {
		return ""
	}
	var total time.Duration
	for _, sp := range spans {
		total += sp.Dur
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign profile — %d phases, total %s\n", len(spans), total.Round(time.Millisecond))
	for _, sp := range spans {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(sp.Dur) / float64(total)
		}
		fmt.Fprintf(&b, "  %-12s %10s %5.1f%%", sp.Name, sp.Dur.Round(time.Millisecond), pct)
		if sp.Items > 0 {
			rate := float64(sp.Items) / sp.Dur.Seconds()
			if sp.Dur <= 0 {
				rate = 0
			}
			fmt.Fprintf(&b, "  (%d items, %.0f/s)", sp.Items, rate)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

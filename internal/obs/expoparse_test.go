package obs

import "testing"

// TestParseExpositionRoundTrip renders a registry with every metric
// kind — including a labeled counter family — and requires the parser
// to read back exactly the values that went in.
func TestParseExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("healers_cache_hits_total").Add(7)
	reg.Counter(`healers_http_requests_total{method="POST",path="/v1/campaigns",code="202"}`).Add(3)
	reg.Gauge("healers_cache_truncated").Set(1)
	h := reg.Histogram("healers_http_request_ms", []int64{1, 10})
	h.Observe(0)
	h.Observe(5)
	h.Observe(50)

	m, err := ParseExposition(reg.Exposition())
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	want := map[string]int64{
		"healers_cache_hits_total": 7,
		`healers_http_requests_total{method="POST",path="/v1/campaigns",code="202"}`: 3,
		"healers_cache_truncated":                   1,
		`healers_http_request_ms_bucket{le="1"}`:    1,
		`healers_http_request_ms_bucket{le="10"}`:   2,
		`healers_http_request_ms_bucket{le="+Inf"}`: 3,
		"healers_http_request_ms_sum":               55,
		"healers_http_request_ms_count":             3,
	}
	for name, v := range want {
		if got, ok := m[name]; !ok || got != v {
			t.Errorf("%s = %d (present %t), want %d", name, got, ok, v)
		}
	}
	if len(m) != len(want) {
		t.Errorf("parsed %d series, want %d: %v", len(m), len(want), m)
	}
}

// TestParseExpositionRejectsGarbage: a half-parsed scrape must be an
// error, never a silently smaller map.
func TestParseExpositionRejectsGarbage(t *testing.T) {
	for _, text := range []string{
		"healers_cache_hits_total seven",
		"lonely_name",
		"name 1.5",
	} {
		if _, err := ParseExposition(text); err == nil {
			t.Errorf("ParseExposition(%q) accepted garbage", text)
		}
	}
}

// TestParseExpositionSkipsCommentsAndBlanks: TYPE/HELP headers and
// blank lines are structure, not series.
func TestParseExpositionSkipsCommentsAndBlanks(t *testing.T) {
	m, err := ParseExposition("# TYPE a counter\n\na 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m["a"] != 4 {
		t.Fatalf("parsed %v, want {a: 4}", m)
	}
}

// Package obs is the zero-dependency observability substrate of the
// HEALERS reproduction: a structured event tracer with pluggable sinks,
// an atomic metrics registry (counters, gauges, fixed-bucket
// histograms), and per-phase span timing for campaign progress reports.
//
// The paper's deliverables (Table 1, Figure 6, Table 2) are aggregate
// observations over millions of sandboxed calls; obs is the layer that
// carries those observations out of the hot paths. Everything here is
// designed so that a disabled tracer (obs.Nop) and a nil registry add
// no allocations to the instrumented code: events are plain value
// structs built only behind Tracer.Enabled() guards, and counters
// obtained from a nil registry still work, they are simply detached
// from any exposition.
package obs

import (
	"fmt"
	"sync"
)

// Kind identifies the type of a trace event.
type Kind uint8

// Event kinds, one per instrumentation point in the Fig. 1 pipeline.
const (
	// KindInjectionProbe is one fault-injection experiment about to run:
	// the function, the argument under exploration, and the probe vector.
	KindInjectionProbe Kind = iota + 1
	// KindArgAdjust is one step of the §4.1 adaptive loop: a fault was
	// attributed to an argument's generator and its test case grew.
	KindArgAdjust
	// KindSandboxOutcome is the result of one sandboxed call: return
	// value with errno, segfault with faulting address, hang, or abort.
	KindSandboxOutcome
	// KindCheckViolation is a wrapper rejection: function, argument,
	// violated robust type, errno delivered, and the policy applied.
	KindCheckViolation
	// KindWrapperCall is one call that traversed the wrapper (checked
	// or passthru); rejected calls emit KindCheckViolation instead.
	KindWrapperCall
	// KindCampaignPhase is campaign progress: phase name plus an
	// n-of-total position (per-function injection, suite progress).
	KindCampaignPhase
	// KindTestOutcome is one Ballista test's classified bucket under
	// one configuration.
	KindTestOutcome
	// KindStaticSeed summarizes how static pre-inference seeds fared on
	// one function's campaign: chains jumped, minimality confirms,
	// mispredictions that fell back to cold growth.
	KindStaticSeed
	// KindSpan is one completed timed phase of the causal tree: the
	// campaign root, a scheduler worker, a per-function injection, or
	// an HTTP-origin span. Phase names it, TS/DurUS time it, and
	// Trace/Span/Parent place it in the tree.
	KindSpan
	// KindHealAction is one argument repair (ModeHeal) or
	// allocation-table rescue (ModeIntrospect) performed by the
	// wrapper: Func/Arg locate it, Probe carries the robust type, and
	// Detail the action applied ("truncate", "substitute-fd",
	// "introspect-rescue", ...).
	KindHealAction
)

var kindNames = [...]string{
	KindInjectionProbe: "injection-probe",
	KindArgAdjust:      "arg-adjust",
	KindSandboxOutcome: "sandbox-outcome",
	KindCheckViolation: "check-violation",
	KindWrapperCall:    "wrapper-call",
	KindCampaignPhase:  "campaign-phase",
	KindTestOutcome:    "test-outcome",
	KindStaticSeed:     "static-seed",
	KindSpan:           "span",
	KindHealAction:     "heal-action",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalText renders the kind as its stable string name, so JSONL
// traces are self-describing rather than carrying raw enum numbers.
func (k Kind) MarshalText() ([]byte, error) {
	if int(k) >= len(kindNames) || kindNames[k] == "" {
		return nil, fmt.Errorf("obs: unknown event kind %d", uint8(k))
	}
	return []byte(kindNames[k]), nil
}

// UnmarshalText parses a kind name emitted by MarshalText.
func (k *Kind) UnmarshalText(text []byte) error {
	for i, name := range kindNames {
		if name == string(text) {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", text)
}

// Event is one structured trace record. It is a flat value struct —
// built on the stack, fanned out by value — so emitting with a
// disabled tracer allocates nothing. Fields are scoped by Kind; unused
// fields stay zero and are omitted from the JSONL encoding.
type Event struct {
	// Seq is the tracer-assigned monotonic sequence number.
	Seq  uint64 `json:"seq"`
	Kind Kind   `json:"kind"`
	// Func is the library function the event concerns.
	Func string `json:"func,omitempty"`
	// Config is the evaluation configuration (unwrapped, full-auto...).
	Config string `json:"config,omitempty"`
	// Phase names the campaign phase for KindCampaignPhase.
	Phase string `json:"phase,omitempty"`
	// Arg is the argument index for argument-scoped kinds.
	Arg int `json:"arg,omitempty"`
	// Probe is the test-case label: the fundamental-type vector of an
	// experiment, the old fund of an adjustment, or the violated robust
	// type of a rejection.
	Probe string `json:"probe,omitempty"`
	// Outcome classifies what happened (return/segfault/hang/abort for
	// sandbox outcomes, errno-set/silent/crash for test outcomes,
	// checked/passthru for wrapper calls).
	Outcome string `json:"outcome,omitempty"`
	// Ret is the raw return value of a returning sandboxed call.
	Ret uint64 `json:"ret,omitempty"`
	// Addr is the faulting address of a segfault or adjustment.
	Addr uint64 `json:"addr,omitempty"`
	// Errno is the numeric errno delivered with the event.
	Errno int `json:"errno,omitempty"`
	// Err is the symbolic errno name (EINVAL, EBADF, ...).
	Err string `json:"err,omitempty"`
	// Policy is the violation policy applied (return-error or abort).
	Policy string `json:"policy,omitempty"`
	// Detail carries free text: a rejection reason, or the new fund of
	// an adjustment.
	Detail string `json:"detail,omitempty"`
	// Steps is the simulated work the call consumed.
	Steps int `json:"steps,omitempty"`
	// N of Total is campaign progress for KindCampaignPhase.
	N     int `json:"n,omitempty"`
	Total int `json:"total,omitempty"`
	// Trace, Span, and Parent place the event in its campaign's causal
	// tree (trace.go). Zero means the emitter was not span-scoped.
	Trace  uint64 `json:"trace,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// TS is the event's wall-clock time in Unix microseconds and DurUS
	// its duration, for timed events (KindSpan, sandbox outcomes). The
	// microsecond unit is the Chrome trace-event convention.
	TS    int64 `json:"ts,omitempty"`
	DurUS int64 `json:"dur_us,omitempty"`
}

// String renders the event as one human-readable line (the TextSink
// format, also what `faultinject -v` prints).
func (e Event) String() string {
	switch e.Kind {
	case KindInjectionProbe:
		return fmt.Sprintf("#%d probe %s(%s) [arg %d]", e.Seq, e.Func, e.Probe, e.Arg)
	case KindArgAdjust:
		return fmt.Sprintf("#%d adjust %s arg%d: %s -> %s (fault at %#x)",
			e.Seq, e.Func, e.Arg, e.Probe, e.Detail, e.Addr)
	case KindSandboxOutcome:
		switch e.Outcome {
		case "return":
			return fmt.Sprintf("#%d %s(%s) -> return %#x (errno %s) [%d steps]",
				e.Seq, e.Func, e.Probe, e.Ret, e.Err, e.Steps)
		case "segfault":
			return fmt.Sprintf("#%d %s(%s) -> SIGSEGV at %#x [%d steps]",
				e.Seq, e.Func, e.Probe, e.Addr, e.Steps)
		default:
			return fmt.Sprintf("#%d %s(%s) -> %s [%d steps]",
				e.Seq, e.Func, e.Probe, e.Outcome, e.Steps)
		}
	case KindCheckViolation:
		return fmt.Sprintf("#%d violation %s arg%d: %s: %s -> %s (%s)",
			e.Seq, e.Func, e.Arg, e.Probe, e.Detail, e.Err, e.Policy)
	case KindWrapperCall:
		return fmt.Sprintf("#%d call %s [%s]", e.Seq, e.Func, e.Outcome)
	case KindCampaignPhase:
		if e.Func != "" {
			return fmt.Sprintf("#%d phase %s [%d/%d] %s", e.Seq, e.Phase, e.N, e.Total, e.Func)
		}
		return fmt.Sprintf("#%d phase %s [%d/%d]", e.Seq, e.Phase, e.N, e.Total)
	case KindTestOutcome:
		return fmt.Sprintf("#%d [%s] %s(%s) -> %s", e.Seq, e.Config, e.Func, e.Probe, e.Outcome)
	case KindStaticSeed:
		return fmt.Sprintf("#%d seed %s: %s", e.Seq, e.Func, e.Detail)
	case KindSpan:
		return fmt.Sprintf("#%d span %s [%dus] trace=%x span=%x parent=%x",
			e.Seq, e.Phase, e.DurUS, e.Trace, e.Span, e.Parent)
	case KindHealAction:
		return fmt.Sprintf("#%d heal %s arg%d (%s): %s", e.Seq, e.Func, e.Arg, e.Probe, e.Detail)
	}
	return fmt.Sprintf("#%d %s", e.Seq, e.Kind)
}

// Sink consumes tracer events. Sinks are invoked in attachment order
// under the tracer's lock, so a sink sees events in sequence order and
// need not be internally synchronized against other emitters.
type Sink interface {
	Emit(e Event)
}

// FuncSink adapts a plain function to the Sink interface.
type FuncSink func(Event)

// Emit implements Sink.
func (f FuncSink) Emit(e Event) { f(e) }

// Tracer assigns sequence numbers and fans events out to its sinks.
// Emit is safe for concurrent use. A tracer with no sinks is disabled:
// Emit returns immediately and allocates nothing, so instrumented hot
// paths pay only a nil/len check when tracing is off.
type Tracer struct {
	mu    sync.Mutex
	seq   uint64
	sinks []Sink
}

// New returns a tracer fanning out to sinks. With no sinks the tracer
// is disabled until Attach adds one.
func New(sinks ...Sink) *Tracer { return &Tracer{sinks: sinks} }

// Nop returns a disabled tracer (no sinks). Instrumented code can hold
// it unconditionally instead of branching on nil.
func Nop() *Tracer { return &Tracer{} }

// Attach adds a sink. Attach is meant for setup time, before events
// flow; it is not synchronized against concurrent Emit.
func (t *Tracer) Attach(s Sink) { t.sinks = append(t.sinks, s) }

// Enabled reports whether any sink is attached. Hot paths use it to
// skip building event payloads entirely.
func (t *Tracer) Enabled() bool { return t != nil && len(t.sinks) > 0 }

// Emit assigns the next sequence number and delivers e to every sink
// in attachment order. Disabled tracers (nil or no sinks) return
// immediately.
func (t *Tracer) Emit(e Event) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	for _, s := range t.sinks {
		s.Emit(e)
	}
	t.mu.Unlock()
}

// Seq returns the number of events emitted so far.
func (t *Tracer) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

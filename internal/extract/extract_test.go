package extract

import (
	"testing"

	"healers/internal/clib"
	"healers/internal/corpus"
	"healers/internal/cparse"
)

func runExtraction(t *testing.T) *Result {
	t.Helper()
	lib := clib.New()
	c := corpus.Build(lib)
	res, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestExtractionStatsMatchPaper(t *testing.T) {
	res := runExtraction(t)
	s := res.Stats
	t.Logf("total=%d internal=%d man=%.1f%% noHdr=%.1f%% wrongHdr=%.1f%% found=%.1f%%",
		s.Total, s.Internal, 100*s.ManCoverage(), 100*s.ManNoHeaderRate(),
		100*s.ManWrongHeaderRate(), 100*s.FoundRate())

	if f := s.InternalFraction(); f <= 0.34 || f > 0.40 {
		t.Errorf("internal fraction = %.3f, want (0.34, 0.40] (paper: >34%%)", f)
	}
	if c := s.ManCoverage(); c < 0.48 || c > 0.55 {
		t.Errorf("man coverage = %.3f, want ~0.511", c)
	}
	if r := s.ManNoHeaderRate(); r < 0.005 || r > 0.03 {
		t.Errorf("man no-header rate = %.3f, want ~0.012", r)
	}
	if r := s.ManWrongHeaderRate(); r < 0.05 || r > 0.10 {
		t.Errorf("man wrong-header rate = %.3f, want ~0.077", r)
	}
	if r := s.FoundRate(); r < 0.94 || r > 0.98 {
		t.Errorf("prototype found rate = %.3f, want ~0.960", r)
	}
}

func TestEveryCrashProneFunctionHasPrototype(t *testing.T) {
	lib := clib.New()
	res := runExtraction(t)
	for _, name := range lib.CrashProne86() {
		fi, ok := res.Lookup(name)
		if !ok {
			t.Errorf("%s: no extraction record", name)
			continue
		}
		if fi.Proto == nil {
			t.Errorf("%s: no prototype found (source %v)", name, fi.Source)
			continue
		}
		if fi.Proto.Name != name {
			t.Errorf("%s: prototype name %q", name, fi.Proto.Name)
		}
		want := lib.MustLookup(name).NArgs
		if got := len(fi.Proto.Params); got != want {
			t.Errorf("%s: %d params extracted, clib says %d", name, got, want)
		}
	}
}

func TestAsctimeExtraction(t *testing.T) {
	res := runExtraction(t)
	fi, ok := res.Lookup("asctime")
	if !ok || fi.Proto == nil {
		t.Fatal("asctime not extracted")
	}
	if len(fi.Proto.Params) != 1 {
		t.Fatalf("params = %d", len(fi.Proto.Params))
	}
	pt := fi.Proto.Params[0].Type
	if pt.Kind != cparse.KindPointer || pt.Elem.Kind != cparse.KindStruct || pt.Elem.Struct != "tm" {
		t.Errorf("asctime param type = %v", pt)
	}
	if sz := res.Table.Sizeof(pt.Elem); sz != 44 {
		t.Errorf("sizeof(struct tm) = %d, want 44", sz)
	}
	if fi.Source != SourceManPage {
		t.Errorf("asctime found via %v, want man page", fi.Source)
	}
}

func TestWrongManHeadersFallBackToSearch(t *testing.T) {
	res := runExtraction(t)
	for _, name := range []string{"telldir", "seekdir", "cfgetispeed", "mkstemp", "strcoll", "fdopen"} {
		fi, ok := res.Lookup(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if !fi.ManWrongHeaders {
			t.Errorf("%s: expected wrong-header man page", name)
		}
		if fi.Proto == nil || fi.Source != SourceHeaderSearch {
			t.Errorf("%s: proto=%v source=%v, want header-search fallback", name, fi.Proto != nil, fi.Source)
		}
	}
}

func TestNoHeaderManPage(t *testing.T) {
	res := runExtraction(t)
	fi, ok := res.Lookup("fflush")
	if !ok {
		t.Fatal("fflush missing")
	}
	if !fi.ManNoHeaders {
		t.Error("fflush man page should list no headers")
	}
	if fi.Proto == nil || fi.Source != SourceHeaderSearch {
		t.Errorf("fflush: source %v, want header search", fi.Source)
	}
}

func TestUndeclaredInternalsNotFound(t *testing.T) {
	res := runExtraction(t)
	for _, name := range []string{"__libc_start_main_internal", "_dl_runtime_resolve_priv"} {
		fi, ok := res.Lookup(name)
		if !ok {
			t.Fatalf("%s missing from symbol table", name)
		}
		if fi.Proto != nil {
			t.Errorf("%s: unexpectedly found a prototype", name)
		}
		if !fi.Internal {
			t.Errorf("%s: not marked internal", name)
		}
	}
}

func TestFILEAndDIRSizes(t *testing.T) {
	res := runExtraction(t)
	fileT, ok := res.Table.LookupTypedef("FILE")
	if !ok {
		t.Fatal("FILE typedef missing")
	}
	if sz := res.Table.Sizeof(fileT); sz != 152 {
		t.Errorf("sizeof(FILE) = %d, want 152", sz)
	}
	dirT, ok := res.Table.LookupTypedef("DIR")
	if !ok {
		t.Fatal("DIR typedef missing")
	}
	if sz := res.Table.Sizeof(dirT); sz != 64 {
		t.Errorf("sizeof(DIR) = %d, want 64", sz)
	}
	if sz := res.Table.Sizeof(&cparse.CType{Kind: cparse.KindStruct, Struct: "termios"}); sz != 56 {
		t.Errorf("sizeof(struct termios) = %d, want 56", sz)
	}
	if sz := res.Table.Sizeof(&cparse.CType{Kind: cparse.KindStruct, Struct: "stat"}); sz != 64 {
		t.Errorf("sizeof(struct stat) = %d, want 64", sz)
	}
	if sz := res.Table.Sizeof(&cparse.CType{Kind: cparse.KindStruct, Struct: "dirent"}); sz != 264 {
		t.Errorf("sizeof(struct dirent) = %d, want 264", sz)
	}
}

func TestInternalNaming(t *testing.T) {
	res := runExtraction(t)
	for _, fi := range res.Funcs {
		wantInternal := fi.Symbol.Name[0] == '_'
		if fi.Internal != wantInternal {
			t.Errorf("%s: internal = %v", fi.Symbol.Name, fi.Internal)
		}
	}
}

func TestSourceString(t *testing.T) {
	if SourceManPage.String() != "man-page" || SourceNone.String() != "not-found" {
		t.Error("Source.String wrong")
	}
}

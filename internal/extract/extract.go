// Package extract implements phase one of the wrapper generation
// process (paper Fig. 1 and §3): it enumerates the global functions of
// the shared library, locates each function's prototype via manual
// pages with a fallback to a full header search, and parses the headers
// into C type information.
package extract

import (
	"fmt"
	"sort"

	"healers/internal/corpus"
	"healers/internal/cparse"
	"healers/internal/elfsim"
	"healers/internal/manpage"
)

// Source records how a function's prototype was located.
type Source uint8

// Prototype sources.
const (
	SourceNone Source = iota // not found anywhere
	SourceManPage
	SourceHeaderSearch
)

func (s Source) String() string {
	switch s {
	case SourceManPage:
		return "man-page"
	case SourceHeaderSearch:
		return "header-search"
	}
	return "not-found"
}

// FuncInfo is the extraction result for one symbol.
type FuncInfo struct {
	Symbol   elfsim.Symbol
	Internal bool // leading-underscore internal function
	Proto    *cparse.Prototype
	Source   Source

	HasManPage      bool
	ManNoHeaders    bool // page exists but lists no headers
	ManWrongHeaders bool // page lists headers that lack the prototype
}

// Stats are the extraction statistics the paper quotes in §3.
type Stats struct {
	Total           int
	Internal        int
	External        int
	WithManPage     int
	ManNoHeaders    int
	ManWrongHeaders int
	FoundViaMan     int
	FoundViaSearch  int
	NotFound        int
}

// InternalFraction returns internal/total.
func (s Stats) InternalFraction() float64 {
	return ratio(s.Internal, s.Total)
}

// ManCoverage returns the fraction of all global functions that have a
// manual page.
func (s Stats) ManCoverage() float64 { return ratio(s.WithManPage, s.Total) }

// ManNoHeaderRate returns the fraction of man pages listing no headers.
func (s Stats) ManNoHeaderRate() float64 { return ratio(s.ManNoHeaders, s.WithManPage) }

// ManWrongHeaderRate returns the fraction of man pages listing wrong
// headers.
func (s Stats) ManWrongHeaderRate() float64 { return ratio(s.ManWrongHeaders, s.WithManPage) }

// FoundRate returns the fraction of functions whose prototype was found.
func (s Stats) FoundRate() float64 {
	return ratio(s.FoundViaMan+s.FoundViaSearch, s.Total)
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Result is the full extraction output.
type Result struct {
	Soname string
	Funcs  []*FuncInfo
	Table  *cparse.TypeTable
	Stats  Stats
}

// Lookup finds the extraction record for a function name.
func (r *Result) Lookup(name string) (*FuncInfo, bool) {
	for _, f := range r.Funcs {
		if f.Symbol.Name == name {
			return f, true
		}
	}
	return nil, false
}

// Run executes the extraction pipeline over a corpus.
func Run(c *corpus.Corpus) (*Result, error) {
	img, err := elfsim.Parse(c.Object)
	if err != nil {
		return nil, fmt.Errorf("extract: parsing shared object: %w", err)
	}

	// Parse every header once, resolving includes recursively so that
	// typedefs defined in bits/ headers are visible to their users.
	parser := cparse.NewParser(cparse.NewTypeTable())
	protosByHeader := make(map[string][]*cparse.Prototype)
	includesOf := make(map[string][]string)
	visited := make(map[string]bool)

	var parseHeader func(path string) error
	parseHeader = func(path string) error {
		if visited[path] {
			return nil
		}
		visited[path] = true
		src, ok := c.Headers[path]
		if !ok {
			return nil // nonexistent header: nothing to parse
		}
		// Dependencies first, so typedefs are defined before use.
		incs, err := cparse.ScanIncludes(src)
		if err != nil {
			return fmt.Errorf("extract: %s: %w", path, err)
		}
		includesOf[path] = incs
		for _, inc := range incs {
			if err := parseHeader(inc); err != nil {
				return err
			}
		}
		decls, err := parser.Parse(path, src)
		if err != nil {
			return err
		}
		protosByHeader[path] = decls.Prototypes
		return nil
	}

	paths := make([]string, 0, len(c.Headers))
	for p := range c.Headers {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	// Parse base type headers first so typedefs are available; the
	// recursive include walk handles any order, but being explicit
	// keeps error messages stable.
	for _, base := range []string{"features.h", "bits/types.h"} {
		if err := parseHeader(base); err != nil {
			return nil, err
		}
	}
	for _, p := range paths {
		if err := parseHeader(p); err != nil {
			return nil, err
		}
	}

	res := &Result{Soname: img.Soname, Table: parser.Table()}

	// findIn locates a prototype for name in the given headers or any
	// header they transitively include.
	findIn := func(name string, headers []string) *cparse.Prototype {
		seen := make(map[string]bool)
		var walk func(h string) *cparse.Prototype
		walk = func(h string) *cparse.Prototype {
			if seen[h] {
				return nil
			}
			seen[h] = true
			for _, proto := range protosByHeader[h] {
				if proto.Name == name {
					return proto
				}
			}
			for _, inc := range includesOf[h] {
				if p := walk(inc); p != nil {
					return p
				}
			}
			return nil
		}
		for _, h := range headers {
			if p := walk(h); p != nil {
				return p
			}
		}
		return nil
	}

	// searchAll scans every header below the include root.
	searchAll := func(name string) *cparse.Prototype {
		for _, h := range paths {
			for _, proto := range protosByHeader[h] {
				if proto.Name == name {
					return proto
				}
			}
		}
		return nil
	}

	for _, sym := range img.GlobalFunctions() {
		fi := &FuncInfo{
			Symbol:   sym,
			Internal: elfsim.IsInternalName(sym.Name),
		}
		res.Stats.Total++
		if fi.Internal {
			res.Stats.Internal++
		} else {
			res.Stats.External++
		}

		if text, ok := c.Man[sym.Name]; ok {
			fi.HasManPage = true
			res.Stats.WithManPage++
			syn := manpage.Parse(text)
			if len(syn.Headers) == 0 {
				fi.ManNoHeaders = true
				res.Stats.ManNoHeaders++
			} else {
				if p := findIn(sym.Name, syn.Headers); p != nil {
					fi.Proto = p
					fi.Source = SourceManPage
					res.Stats.FoundViaMan++
				} else {
					fi.ManWrongHeaders = true
					res.Stats.ManWrongHeaders++
				}
			}
		}
		if fi.Proto == nil {
			if p := searchAll(sym.Name); p != nil {
				fi.Proto = p
				fi.Source = SourceHeaderSearch
				res.Stats.FoundViaSearch++
			} else {
				res.Stats.NotFound++
			}
		}
		res.Funcs = append(res.Funcs, fi)
	}
	return res, nil
}

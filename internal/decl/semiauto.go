package decl

import "strings"

// ApplySemiAutoEdits returns a copy of the declaration set with the
// paper's §6 manual edits applied: executable assertions that track
// directory structures statefully and validate the integrity of FILE
// structures beyond the automatic fileno+fstat check. These are the
// edits that take the wrapper from "16 functions still crash" to "all
// crash failures eliminated" in Figure 6.
func ApplySemiAutoEdits(s *DeclSet) *DeclSet {
	c := s.Clone()
	for _, d := range c.ByName {
		if !d.Unsafe() {
			continue
		}
		var hasDir, hasFile bool
		for _, a := range d.Args {
			if strings.Contains(a.CType, "__dirstream") {
				hasDir = true
			}
			if strings.Contains(a.CType, "_IO_FILE") {
				hasFile = true
			}
		}
		if hasDir {
			d.Assertions = appendAssertion(d.Assertions, AssertValidDir)
		}
		if hasFile {
			d.Assertions = appendAssertion(d.Assertions, AssertFileIntegrity)
		}
	}
	return c
}

func appendAssertion(list []Assertion, a Assertion) []Assertion {
	for _, x := range list {
		if x == a {
			return list
		}
	}
	return append(list, a)
}

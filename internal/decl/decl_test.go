package decl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSizeExprStringRoundTrip(t *testing.T) {
	exprs := []SizeExpr{
		Fixed(44),
		Fixed(0),
		{Kind: SizeStrlenPlus1, A: 1},
		{Kind: SizeArgValue, A: 2},
		{Kind: SizeArgProduct, A: 1, B: 2},
		{Kind: SizeStrlenSumPlus1, A: 0, B: 1},
		{Kind: SizeMinStrlenP1N, A: 2, B: 1},
		{Kind: SizeMinStrlenNP1, A: 1, B: 2},
	}
	for _, e := range exprs {
		s := e.String()
		got, err := parseSizeExpr(s)
		if err != nil {
			t.Errorf("parse(%q): %v", s, err)
			continue
		}
		if got != e {
			t.Errorf("round trip %q: got %+v, want %+v", s, got, e)
		}
	}
}

type fakeArgs struct {
	strlens map[int]int
	vals    map[int]int64
}

func (f fakeArgs) Strlen(i int) (int, bool) {
	l, ok := f.strlens[i]
	return l, ok
}
func (f fakeArgs) Value(i int) int64 { return f.vals[i] }

func TestSizeExprEval(t *testing.T) {
	args := fakeArgs{
		strlens: map[int]int{1: 5, 2: 10},
		vals:    map[int]int64{0: 8, 3: 4},
	}
	tests := []struct {
		expr   SizeExpr
		want   int
		wantOK bool
	}{
		{Fixed(44), 44, true},
		{SizeExpr{Kind: SizeStrlenPlus1, A: 1}, 6, true},
		{SizeExpr{Kind: SizeStrlenPlus1, A: 0}, 0, false}, // not a string
		{SizeExpr{Kind: SizeArgValue, A: 0}, 8, true},
		{SizeExpr{Kind: SizeArgProduct, A: 0, B: 3}, 32, true},
		{SizeExpr{Kind: SizeStrlenSumPlus1, A: 1, B: 2}, 16, true},
		{SizeExpr{Kind: SizeMinStrlenP1N, A: 1, B: 0}, 6, true}, // min(6, 8)
		{SizeExpr{Kind: SizeMinStrlenP1N, A: 2, B: 3}, 4, true}, // min(11, 4)
		{SizeExpr{Kind: SizeMinStrlenNP1, A: 1, B: 3}, 5, true}, // min(5,4)+1
		{SizeExpr{Kind: SizeMinStrlenNP1, A: 1, B: 0}, 6, true}, // min(5,8)+1
	}
	for _, tt := range tests {
		got, ok := tt.expr.Eval(args)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("%s.Eval = %d, %v; want %d, %v", tt.expr, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestSizeExprEvalRejectsNegativeAndOverflow(t *testing.T) {
	args := fakeArgs{vals: map[int]int64{0: -1, 1: 1 << 50, 2: 1 << 50}}
	if _, ok := (SizeExpr{Kind: SizeArgValue, A: 0}).Eval(args); ok {
		t.Error("negative value accepted")
	}
	if _, ok := (SizeExpr{Kind: SizeArgProduct, A: 1, B: 2}).Eval(args); ok {
		t.Error("overflowing product accepted")
	}
}

func TestRobustTypeParseAndString(t *testing.T) {
	tests := []string{
		"R_ARRAY_NULL[44]",
		"W_ARRAY[strlen(arg1)+1]",
		"RW_ARRAY[arg1*arg2]",
		"R_BOUNDED[arg2]",
		"W_ARRAY[min(strlen(arg1),arg2)+1]",
		"OPEN_FILE",
		"CSTR",
		"UNCONSTRAINED",
	}
	for _, s := range tests {
		rt, err := ParseRobustType(s)
		if err != nil {
			t.Errorf("ParseRobustType(%q): %v", s, err)
			continue
		}
		if got := rt.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if _, err := ParseRobustType("R_ARRAY[bogus]"); err == nil {
		t.Error("bogus size accepted")
	}
	if _, err := ParseRobustType("R_ARRAY[44"); err == nil {
		t.Error("unterminated bracket accepted")
	}
}

func TestPropertyFixedRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		rt := RobustType{Base: "R_ARRAY", Size: Fixed(int(n))}
		back, err := ParseRobustType(rt.String())
		return err == nil && back == rt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sampleDecl() *FuncDecl {
	return &FuncDecl{
		Name:    "strcpy",
		Version: "HLIBC_2.2",
		Ret:     "char*",
		Args: []ArgDecl{
			{CType: "char*", Robust: RobustType{Base: "W_ARRAY", Size: SizeExpr{Kind: SizeStrlenPlus1, A: 1}}},
			{CType: "const char*", Robust: RobustType{Base: "CSTR"}},
		},
		HasErrorValue: true,
		ErrorValue:    0,
		Errnos:        []string{"EINVAL"},
		ErrnoOnReject: 22,
		Attribute:     AttrUnsafe,
		ErrClass:      ErrClassNotFound,
	}
}

func TestXMLRoundTrip(t *testing.T) {
	d := sampleDecl()
	data, err := d.EncodeXML()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || back.Version != d.Version || back.Ret != d.Ret {
		t.Errorf("header mismatch: %+v", back)
	}
	if len(back.Args) != 2 {
		t.Fatalf("args = %d", len(back.Args))
	}
	if back.Args[0].Robust.String() != "W_ARRAY[strlen(arg1)+1]" {
		t.Errorf("arg0 robust = %s", back.Args[0].Robust)
	}
	if !back.HasErrorValue || back.ErrorValue != 0 {
		t.Errorf("error value lost: %v %d", back.HasErrorValue, back.ErrorValue)
	}
	if back.Attribute != AttrUnsafe {
		t.Errorf("attribute = %s", back.Attribute)
	}
}

func TestXMLNegativeErrorValue(t *testing.T) {
	d := sampleDecl()
	d.Ret = "int"
	d.ErrorValue = ^uint64(0)
	data, _ := d.EncodeXML()
	if !strings.Contains(string(data), "<error_value>-1</error_value>") {
		t.Errorf("missing -1: %s", data)
	}
	back, err := UnmarshalXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ErrorValue != ^uint64(0) {
		t.Errorf("error value = %d", int64(back.ErrorValue))
	}
}

func TestMarshalSetXML(t *testing.T) {
	set := NewDeclSet()
	set.Add(sampleDecl())
	a := sampleDecl()
	a.Name = "asctime"
	set.Add(a)
	data, err := set.MarshalSetXML()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "<functions>") || !strings.HasSuffix(strings.TrimSpace(s), "</functions>") {
		t.Errorf("missing wrapper element:\n%s", s)
	}
	// Sorted: asctime before strcpy.
	if strings.Index(s, "asctime") > strings.Index(s, "strcpy") {
		t.Error("set not sorted")
	}
}

func TestDeclSetClone(t *testing.T) {
	set := NewDeclSet()
	set.Add(sampleDecl())
	clone := set.Clone()
	d, _ := clone.Get("strcpy")
	d.Assertions = append(d.Assertions, AssertValidDir)
	d.Args[0].Robust.Base = "UNCONSTRAINED"
	orig, _ := set.Get("strcpy")
	if len(orig.Assertions) != 0 {
		t.Error("clone shares assertions")
	}
	if orig.Args[0].Robust.Base != "W_ARRAY" {
		t.Error("clone shares args")
	}
}

func TestApplySemiAutoEdits(t *testing.T) {
	set := NewDeclSet()
	set.Add(&FuncDecl{
		Name:      "readdir",
		Ret:       "struct dirent*",
		Args:      []ArgDecl{{CType: "struct __dirstream*", Robust: RobustType{Base: "OPEN_DIR"}}},
		Attribute: AttrUnsafe,
	})
	set.Add(&FuncDecl{
		Name:      "fgetc",
		Ret:       "int",
		Args:      []ArgDecl{{CType: "struct _IO_FILE*", Robust: RobustType{Base: "OPEN_FILE"}}},
		Attribute: AttrUnsafe,
	})
	set.Add(&FuncDecl{
		Name:      "read",
		Ret:       "ssize_t",
		Args:      []ArgDecl{{CType: "int"}, {CType: "void*"}, {CType: "size_t"}},
		Attribute: AttrSafe,
	})
	semi := ApplySemiAutoEdits(set)

	rd, _ := semi.Get("readdir")
	if len(rd.Assertions) != 1 || rd.Assertions[0] != AssertValidDir {
		t.Errorf("readdir assertions = %v", rd.Assertions)
	}
	fg, _ := semi.Get("fgetc")
	if len(fg.Assertions) != 1 || fg.Assertions[0] != AssertFileIntegrity {
		t.Errorf("fgetc assertions = %v", fg.Assertions)
	}
	r, _ := semi.Get("read")
	if len(r.Assertions) != 0 {
		t.Errorf("safe function got assertions: %v", r.Assertions)
	}
	// Original untouched.
	orig, _ := set.Get("readdir")
	if len(orig.Assertions) != 0 {
		t.Error("original set mutated")
	}
	// Idempotent.
	again := ApplySemiAutoEdits(semi)
	rd2, _ := again.Get("readdir")
	if len(rd2.Assertions) != 1 {
		t.Errorf("assertions duplicated: %v", rd2.Assertions)
	}
}

func TestSetXMLRoundTrip(t *testing.T) {
	set := NewDeclSet()
	set.Add(sampleDecl())
	a := sampleDecl()
	a.Name = "asctime"
	a.Assertions = []Assertion{AssertFileIntegrity}
	set.Add(a)
	data, err := set.MarshalSetXML()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSetXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.ByName) != 2 {
		t.Fatalf("functions = %d", len(back.ByName))
	}
	d, ok := back.Get("asctime")
	if !ok || len(d.Assertions) != 1 || d.Assertions[0] != AssertFileIntegrity {
		t.Errorf("assertions lost: %+v", d)
	}
	s, _ := back.Get("strcpy")
	if s.Args[0].Robust.String() != "W_ARRAY[strlen(arg1)+1]" {
		t.Errorf("robust type lost: %s", s.Args[0].Robust)
	}
	if _, err := UnmarshalSetXML([]byte("not xml")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestErrClassStrings(t *testing.T) {
	for _, c := range []ErrClass{ErrClassNoReturn, ErrClassConsistent, ErrClassInconsistent, ErrClassNotFound} {
		if c.String() == "" || strings.Contains(c.String(), "ErrClass(") {
			t.Errorf("bad string for %d: %s", c, c)
		}
	}
}

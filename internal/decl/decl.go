// Package decl defines the function declarations of paper §3 (Figure 2):
// the machine-readable contract between the fault injector, which
// discovers robust argument types, and the wrapper generator, which
// turns them into argument checks. Declarations serialize to the XML
// format shown in the paper and support the manual-edit overlay that
// upgrades the fully automatic wrapper into the semi-automatic one.
package decl

import (
	"fmt"
	"strconv"
	"strings"
)

// SizeKind says how an array robust type's size parameter is computed
// at check time.
type SizeKind uint8

// Size expression kinds. Fixed sizes come straight out of injection;
// the dependent kinds are inferred by re-running the adaptive growth
// chain under varied sibling arguments.
const (
	SizeFixed          SizeKind = iota + 1
	SizeStrlenPlus1             // strlen(arg A) + 1
	SizeArgValue                // value of arg A
	SizeArgProduct              // value of arg A * value of arg B
	SizeStrlenSumPlus1          // strlen(arg A) + strlen(arg B) + 1 (manual-edit only)
	SizeMinStrlenP1N            // min(strlen(arg A)+1, arg B)    — strxfrm shape
	SizeMinStrlenNP1            // min(strlen(arg A), arg B) + 1  — strncat shape
)

// ArgsView lets a size expression read the live arguments of a call:
// the wrapper implements it over the simulated process, the injector
// over its probe metadata.
type ArgsView interface {
	// Strlen returns the length of the string argument i (and whether
	// it could be read).
	Strlen(i int) (int, bool)
	// Value returns the integer value of argument i.
	Value(i int) int64
}

// Eval computes the concrete size of the expression for a call. ok is
// false when a referenced string argument cannot be read (the caller
// should then reject the call) or the size over/underflows.
func (e SizeExpr) Eval(args ArgsView) (int, bool) {
	clamp := func(v int64) (int, bool) {
		if v < 0 || v > 1<<40 {
			return 0, false
		}
		return int(v), true
	}
	switch e.Kind {
	case SizeFixed:
		return e.N, true
	case SizeStrlenPlus1:
		l, ok := args.Strlen(e.A)
		if !ok {
			return 0, false
		}
		return l + 1, true
	case SizeArgValue:
		return clamp(args.Value(e.A))
	case SizeArgProduct:
		a, b := args.Value(e.A), args.Value(e.B)
		if a < 0 || b < 0 {
			return 0, false
		}
		if b != 0 && a > (1<<40)/b {
			return 0, false
		}
		return clamp(a * b)
	case SizeStrlenSumPlus1:
		la, ok := args.Strlen(e.A)
		if !ok {
			return 0, false
		}
		lb, ok := args.Strlen(e.B)
		if !ok {
			return 0, false
		}
		return la + lb + 1, true
	case SizeMinStrlenP1N:
		l, ok := args.Strlen(e.A)
		if !ok {
			return 0, false
		}
		n, ok := clamp(args.Value(e.B))
		if !ok {
			return 0, false
		}
		if l+1 < n {
			return l + 1, true
		}
		return n, true
	case SizeMinStrlenNP1:
		l, ok := args.Strlen(e.A)
		if !ok {
			return 0, false
		}
		n, ok := clamp(args.Value(e.B))
		if !ok {
			return 0, false
		}
		if l < n {
			return l + 1, true
		}
		return n + 1, true
	}
	return 0, false
}

// SizeExpr parameterizes an array robust type.
type SizeExpr struct {
	Kind SizeKind
	N    int // fixed size
	A, B int // referenced argument indices (0-based)
}

// Fixed returns a fixed-size expression.
func Fixed(n int) SizeExpr { return SizeExpr{Kind: SizeFixed, N: n} }

func (e SizeExpr) String() string {
	switch e.Kind {
	case SizeFixed:
		return strconv.Itoa(e.N)
	case SizeStrlenPlus1:
		return fmt.Sprintf("strlen(arg%d)+1", e.A)
	case SizeArgValue:
		return fmt.Sprintf("arg%d", e.A)
	case SizeArgProduct:
		return fmt.Sprintf("arg%d*arg%d", e.A, e.B)
	case SizeStrlenSumPlus1:
		return fmt.Sprintf("strlen(arg%d)+strlen(arg%d)+1", e.A, e.B)
	case SizeMinStrlenP1N:
		return fmt.Sprintf("min(strlen(arg%d)+1,arg%d)", e.A, e.B)
	case SizeMinStrlenNP1:
		return fmt.Sprintf("min(strlen(arg%d),arg%d)+1", e.A, e.B)
	}
	return "?"
}

// parseSizeExpr inverts String.
func parseSizeExpr(s string) (SizeExpr, error) {
	if n, err := strconv.Atoi(s); err == nil {
		return Fixed(n), nil
	}
	var a, b int
	if n, _ := fmt.Sscanf(s, "min(strlen(arg%d)+1,arg%d)", &a, &b); n == 2 {
		return SizeExpr{Kind: SizeMinStrlenP1N, A: a, B: b}, nil
	}
	if n, _ := fmt.Sscanf(s, "min(strlen(arg%d),arg%d)+1", &a, &b); n == 2 {
		return SizeExpr{Kind: SizeMinStrlenNP1, A: a, B: b}, nil
	}
	if n, _ := fmt.Sscanf(s, "strlen(arg%d)+strlen(arg%d)+1", &a, &b); n == 2 {
		return SizeExpr{Kind: SizeStrlenSumPlus1, A: a, B: b}, nil
	}
	if n, _ := fmt.Sscanf(s, "strlen(arg%d)+1", &a); n == 1 {
		return SizeExpr{Kind: SizeStrlenPlus1, A: a}, nil
	}
	if n, _ := fmt.Sscanf(s, "arg%d*arg%d", &a, &b); n == 2 {
		return SizeExpr{Kind: SizeArgProduct, A: a, B: b}, nil
	}
	if n, _ := fmt.Sscanf(s, "arg%d", &a); n == 1 {
		return SizeExpr{Kind: SizeArgValue, A: a}, nil
	}
	return SizeExpr{}, fmt.Errorf("decl: bad size expression %q", s)
}

// RobustType is a robust argument type: a unified type base plus an
// optional size parameter.
type RobustType struct {
	Base string // "R_ARRAY_NULL", "OPEN_FILE", "CSTR", "UNCONSTRAINED", ...
	Size SizeExpr
}

// Parameterized reports whether the base takes a size parameter.
// R_BOUNDED[n] is the bounded-read string type: readable until a NUL
// terminator or n bytes, whichever comes first — the contract of
// strncpy's source.
func (r RobustType) Parameterized() bool {
	switch r.Base {
	case "R_ARRAY", "RW_ARRAY", "W_ARRAY", "R_ARRAY_NULL", "RW_ARRAY_NULL", "W_ARRAY_NULL", "R_BOUNDED":
		return true
	}
	return false
}

func (r RobustType) String() string {
	if r.Parameterized() {
		return fmt.Sprintf("%s[%s]", r.Base, r.Size)
	}
	return r.Base
}

// ParseRobustType inverts RobustType.String, also accepting the
// instantiated names produced by the type system ("R_ARRAY_NULL[44]").
func ParseRobustType(s string) (RobustType, error) {
	i := strings.IndexByte(s, '[')
	if i < 0 {
		return RobustType{Base: s}, nil
	}
	if !strings.HasSuffix(s, "]") {
		return RobustType{}, fmt.Errorf("decl: bad robust type %q", s)
	}
	expr, err := parseSizeExpr(s[i+1 : len(s)-1])
	if err != nil {
		return RobustType{}, err
	}
	return RobustType{Base: s[:i], Size: expr}, nil
}

// ArgDecl describes one argument.
type ArgDecl struct {
	CType  string
	Robust RobustType
}

// Attribute classifies a function as needing wrapping or not (§3.4).
type Attribute string

// Function attributes.
const (
	AttrSafe   Attribute = "safe"
	AttrUnsafe Attribute = "unsafe"
)

// ErrClass is the paper's Table 1 classification of error return
// behaviour.
type ErrClass uint8

// Error-return classes.
const (
	ErrClassNoReturn ErrClass = iota + 1
	ErrClassConsistent
	ErrClassInconsistent
	ErrClassNotFound
)

func (c ErrClass) String() string {
	switch c {
	case ErrClassNoReturn:
		return "no-return-code"
	case ErrClassConsistent:
		return "consistent"
	case ErrClassInconsistent:
		return "inconsistent"
	case ErrClassNotFound:
		return "not-found"
	}
	return fmt.Sprintf("ErrClass(%d)", uint8(c))
}

// Assertion names an executable assertion attached by manual editing
// (§5.2/§6: tracking directory structures, validating FILE integrity).
type Assertion string

// Executable assertions available to declarations.
const (
	AssertValidDir      Assertion = "valid_dir"      // stateful DIR* table lookup
	AssertFileIntegrity Assertion = "file_integrity" // validate FILE buffer fields
)

// FuncDecl is the full declaration of Figure 2.
type FuncDecl struct {
	Name    string
	Version string
	Ret     string
	Args    []ArgDecl

	// HasErrorValue is false for the paper's "No Error Return Code
	// Found" and "No Return Code" classes.
	HasErrorValue bool
	// ErrorValue is the value returned on error, sign-extended.
	ErrorValue uint64
	// Errnos are the errno names observed (e.g. "EINVAL").
	Errnos []string
	// ErrnoOnReject is the errno the wrapper sets when it rejects a
	// call (EINVAL unless the function suggests otherwise).
	ErrnoOnReject int

	Attribute Attribute
	ErrClass  ErrClass

	// Assertions added by manual editing (empty for full-auto decls).
	Assertions []Assertion
}

// Unsafe reports whether the wrapper generator should wrap this
// function.
func (d *FuncDecl) Unsafe() bool { return d.Attribute == AttrUnsafe }

// DeclSet is a named collection of declarations.
type DeclSet struct {
	ByName map[string]*FuncDecl
}

// NewDeclSet returns an empty set.
func NewDeclSet() *DeclSet { return &DeclSet{ByName: make(map[string]*FuncDecl)} }

// Add inserts (or replaces) a declaration.
func (s *DeclSet) Add(d *FuncDecl) { s.ByName[d.Name] = d }

// Get finds a declaration.
func (s *DeclSet) Get(name string) (*FuncDecl, bool) {
	d, ok := s.ByName[name]
	return d, ok
}

// Clone deep-copies the set (manual editing works on a copy).
func (s *DeclSet) Clone() *DeclSet {
	c := NewDeclSet()
	for _, d := range s.ByName {
		dd := *d
		dd.Args = append([]ArgDecl(nil), d.Args...)
		dd.Errnos = append([]string(nil), d.Errnos...)
		dd.Assertions = append([]Assertion(nil), d.Assertions...)
		c.Add(&dd)
	}
	return c
}

// Package benchgate turns the committed campaign benchmark trajectory
// (BENCH_campaign.json) from a log into an enforced contract. The file
// holds an append-only history of measured entries, each stamped with
// the git SHA and machine shape that produced it; the gate compares a
// fresh measurement against the last committed entry and fails when a
// tracked number regresses beyond its tolerance.
//
// Tolerances are deliberately two-tier: timing categories (cold
// campaign walls, forks/sec) are noisy on shared runners and can be
// softened to warnings via BENCH_GATE_SOFT, while structural categories
// — the wrapper nop path allocating at all, the warm-cache path losing
// its speedup — are cheap to measure reliably and stay hard failures
// everywhere.
package benchgate

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one measured campaign shape: the benchmark numbers plus the
// provenance needed to compare entries honestly (a 1-CPU CI runner and
// a 16-core workstation are not the same machine).
type Entry struct {
	GitSHA string `json:"git_sha"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
	// GoMaxProcs is the scheduler width the entry ran under — a 4-proc
	// CI shard and a 1-proc one are different machines for timing
	// purposes even on identical hardware. Zero in pre-multicore
	// entries, which match any width.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`

	Functions int `json:"functions"`

	// Wall-clock for one full cold campaign (nothing cached).
	ColdSequentialMS float64 `json:"cold_sequential_ms"`
	ColdParallel8MS  float64 `json:"cold_parallel8_ms"`
	// Wall-clock for a campaign served entirely from the result cache.
	WarmCachedMS float64 `json:"warm_cached_ms"`

	// Copy-on-write accounting of the cold sequential campaign.
	Forks          int64   `json:"forks"`
	ForksPerSec    float64 `json:"forks_per_sec"`
	PagesShared    int64   `json:"pages_shared"`
	PagesCopied    int64   `json:"pages_copied"`
	BytesAvoidedMB float64 `json:"bytes_avoided_mb"`

	// Checkpoint-tree accounting of the cold sequential campaign:
	// checkpoint nodes materialized, prefix probe builds skipped, and
	// the setup phase (fork + materialize) wall time with checkpointing
	// on versus the same campaign with it disabled. The on/off pair is
	// measured in one process back to back, so the savings ratio is
	// immune to runner-speed drift between entries.
	CheckpointNodes int64   `json:"checkpoint_nodes,omitempty"`
	BuildsAvoided   int64   `json:"builds_avoided,omitempty"`
	SetupPhaseMS    float64 `json:"setup_phase_ms,omitempty"`
	SetupNoCkptMS   float64 `json:"setup_nockpt_ms,omitempty"`

	// The wrapper's nop-observability call path (strlen through the
	// interposer with a no-op tracer).
	WrapperNopNsPerOp     float64 `json:"wrapper_nop_ns_per_op"`
	WrapperNopAllocsPerOp int64   `json:"wrapper_nop_allocs_per_op"`
}

// Comparable reports whether prev is an honest baseline for cur: same
// OS, architecture, CPU count, and scheduler width. Legacy entries
// with zero provenance fields match anything (the numbers are all they
// recorded).
func (prev Entry) Comparable(cur Entry) bool {
	if prev.GOOS != "" && prev.GOOS != cur.GOOS {
		return false
	}
	if prev.GOARCH != "" && prev.GOARCH != cur.GOARCH {
		return false
	}
	if prev.NumCPU != 0 && prev.NumCPU != cur.NumCPU {
		return false
	}
	if prev.GoMaxProcs != 0 && prev.GoMaxProcs != cur.GoMaxProcs {
		return false
	}
	return true
}

// History is the BENCH_campaign.json schema: an append-only entry list,
// oldest first.
type History struct {
	Entries []Entry `json:"entries"`
}

// Last returns the most recent entry, or false for an empty history.
func (h *History) Last() (Entry, bool) {
	if len(h.Entries) == 0 {
		return Entry{}, false
	}
	return h.Entries[len(h.Entries)-1], true
}

// LastComparable returns the most recent entry whose machine shape
// matches cur (see Entry.Comparable), or false when none does. The
// gate compares against this, never raw Last: a 1-CPU entry must not
// judge a 4-proc run and vice versa.
func (h *History) LastComparable(cur Entry) (Entry, bool) {
	for i := len(h.Entries) - 1; i >= 0; i-- {
		if h.Entries[i].Comparable(cur) {
			return h.Entries[i], true
		}
	}
	return Entry{}, false
}

// Append adds e to the history.
func (h *History) Append(e Entry) { h.Entries = append(h.Entries, e) }

// Load reads a history file. A missing file yields an empty history.
// The pre-history single-object form (one bare Entry, no "entries" key)
// is migrated in place to a one-entry history, so old checkouts gate
// against their last committed measurement instead of starting blind.
func Load(path string) (*History, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &History{}, nil
	}
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse decodes history bytes, migrating the legacy single-object form.
func Parse(data []byte) (*History, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("benchgate: not a JSON object: %w", err)
	}
	if _, ok := probe["entries"]; !ok {
		// Legacy form: the whole object is one entry. Provenance fields
		// did not exist then; they stay zero and Check treats the entry
		// as comparable (the numbers are what the gate cares about).
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("benchgate: legacy entry: %w", err)
		}
		return &History{Entries: []Entry{e}}, nil
	}
	var h History
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("benchgate: history: %w", err)
	}
	return &h, nil
}

// Save writes the history as indented JSON.
func (h *History) Save(path string) error {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Violation categories, one per gated number.
const (
	CatColdSequential = "cold_sequential"
	CatColdParallel8  = "cold_parallel8"
	CatWarmCached     = "warm_cached"
	CatForksPerSec    = "forks_per_sec"
	CatWrapperNs      = "wrapper_ns"
	CatWrapperAllocs  = "wrapper_allocs"
	// CatCheckpointSavings is a self-ratio on the fresh entry: the
	// checkpointed setup phase must stay at or below CheckpointRatio of
	// the same process's checkpoint-disabled setup phase.
	CatCheckpointSavings = "checkpoint_savings"
	// CatParallelScaling is a self-ratio on the fresh entry, checked
	// only when the run had at least MinScalingProcs schedulable CPUs:
	// the 8-worker cold wall must stay at or below ParallelRatio of the
	// sequential cold wall.
	CatParallelScaling = "parallel_scaling"
)

// Tolerances configure how much each category may regress before the
// gate fails. Percentages are relative to the previous entry; absolute
// slacks guard the tiny-denominator cases (a 0.5ms warm path doubling
// to 1.1ms is noise, not a regression).
type Tolerances struct {
	// ColdPct allows the cold sequential campaign wall to grow this
	// many percent.
	ColdPct float64
	// ParallelPct allows the 8-worker cold wall to grow this many
	// percent (parallel timing is the noisiest category).
	ParallelPct float64
	// WarmPct and WarmSlackMS bound the warm-cache wall: the measured
	// value may exceed the previous by WarmPct percent plus WarmSlackMS
	// absolute milliseconds.
	WarmPct     float64
	WarmSlackMS float64
	// ForksPct allows forks/sec to drop this many percent.
	ForksPct float64
	// WrapperNsPct allows the wrapper nop path to slow this many percent.
	WrapperNsPct float64
	// MaxWrapperAllocs is the absolute ceiling on wrapper nop-path
	// allocations per op — not relative: the contract is zero.
	MaxWrapperAllocs int64
	// CheckpointRatio is the ceiling on SetupPhaseMS / SetupNoCkptMS:
	// the checkpoint tree must cut the measured fork+materialize phase
	// by at least (1 - ratio). Self-contained in one entry, so it holds
	// on any runner speed.
	CheckpointRatio float64
	// ParallelRatio is the ceiling on ColdParallel8MS /
	// ColdSequentialMS, and MinScalingProcs is the effective CPU count
	// (min of NumCPU and GoMaxProcs) below which the check is skipped —
	// parallel speedup is unobservable on a 1-CPU runner.
	ParallelRatio   float64
	MinScalingProcs int
	// Soft marks categories whose violations warn instead of fail —
	// the 1-CPU CI runner softens the timing categories and keeps the
	// structural ones hard.
	Soft map[string]bool
}

// DefaultTolerances returns the gate's default thresholds. Timing
// tolerances are wide — the gate exists to catch step-function
// regressions (an accidental O(n²), a lost cache), not 5% jitter.
func DefaultTolerances() Tolerances {
	return Tolerances{
		ColdPct:          25,
		ParallelPct:      75,
		WarmPct:          100,
		WarmSlackMS:      2.0,
		ForksPct:         40,
		WrapperNsPct:     75,
		MaxWrapperAllocs: 0,
		CheckpointRatio:  0.70,
		ParallelRatio:    0.50,
		MinScalingProcs:  4,
	}
}

// TolerancesFromEnv builds tolerances from the defaults plus
// BENCH_GATE_*_PCT overrides and the BENCH_GATE_SOFT category list
// (comma-separated). getenv is injected for testability; pass
// os.Getenv in production.
func TolerancesFromEnv(getenv func(string) string) Tolerances {
	tol := DefaultTolerances()
	override := func(key string, dst *float64) {
		if v := getenv(key); v != "" {
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				*dst = f
			}
		}
	}
	override("BENCH_GATE_COLD_PCT", &tol.ColdPct)
	override("BENCH_GATE_PARALLEL_PCT", &tol.ParallelPct)
	override("BENCH_GATE_WARM_PCT", &tol.WarmPct)
	override("BENCH_GATE_WARM_SLACK_MS", &tol.WarmSlackMS)
	override("BENCH_GATE_FORKS_PCT", &tol.ForksPct)
	override("BENCH_GATE_WRAPPER_NS_PCT", &tol.WrapperNsPct)
	override("BENCH_GATE_CKPT_RATIO", &tol.CheckpointRatio)
	override("BENCH_GATE_PARALLEL_RATIO", &tol.ParallelRatio)
	if soft := getenv("BENCH_GATE_SOFT"); soft != "" {
		tol.Soft = make(map[string]bool)
		for _, cat := range strings.Split(soft, ",") {
			if cat = strings.TrimSpace(cat); cat != "" {
				tol.Soft[cat] = true
			}
		}
	}
	return tol
}

// Violation is one gated number outside its tolerance.
type Violation struct {
	Category string
	Msg      string
	// Soft violations warn instead of failing the gate.
	Soft bool
}

func (v Violation) String() string {
	kind := "FAIL"
	if v.Soft {
		kind = "warn"
	}
	return fmt.Sprintf("[%s] %s: %s", kind, v.Category, v.Msg)
}

// Hard reports whether any violation in vs is a hard failure.
func Hard(vs []Violation) bool {
	for _, v := range vs {
		if !v.Soft {
			return true
		}
	}
	return false
}

// Check compares a fresh measurement against the previous entry under
// tol and returns every violated category. Relative checks are skipped
// when the previous entry lacks the number (zero): a partially
// populated legacy entry gates only what it recorded. The wrapper
// allocation ceiling and the two self-ratio categories (checkpoint
// savings, parallel scaling) are absolute properties of the fresh
// entry and are checked regardless of prev.
func Check(prev, cur Entry, tol Tolerances) []Violation {
	var out []Violation
	add := func(cat, msg string) {
		out = append(out, Violation{Category: cat, Msg: msg, Soft: tol.Soft[cat]})
	}

	if prev.ColdSequentialMS > 0 {
		limit := prev.ColdSequentialMS * (1 + tol.ColdPct/100)
		if cur.ColdSequentialMS > limit {
			add(CatColdSequential, fmt.Sprintf("cold sequential %.1fms exceeds %.1fms (prev %.1fms +%.0f%%)",
				cur.ColdSequentialMS, limit, prev.ColdSequentialMS, tol.ColdPct))
		}
	}
	if prev.ColdParallel8MS > 0 {
		limit := prev.ColdParallel8MS * (1 + tol.ParallelPct/100)
		if cur.ColdParallel8MS > limit {
			add(CatColdParallel8, fmt.Sprintf("cold parallel8 %.1fms exceeds %.1fms (prev %.1fms +%.0f%%)",
				cur.ColdParallel8MS, limit, prev.ColdParallel8MS, tol.ParallelPct))
		}
	}
	if prev.WarmCachedMS > 0 {
		limit := prev.WarmCachedMS*(1+tol.WarmPct/100) + tol.WarmSlackMS
		if cur.WarmCachedMS > limit {
			add(CatWarmCached, fmt.Sprintf("warm cached %.2fms exceeds %.2fms (prev %.2fms +%.0f%% +%.1fms slack)",
				cur.WarmCachedMS, limit, prev.WarmCachedMS, tol.WarmPct, tol.WarmSlackMS))
		}
	}
	if prev.ForksPerSec > 0 {
		floor := prev.ForksPerSec * (1 - tol.ForksPct/100)
		if cur.ForksPerSec < floor {
			add(CatForksPerSec, fmt.Sprintf("forks/sec %.0f below %.0f (prev %.0f -%.0f%%)",
				cur.ForksPerSec, floor, prev.ForksPerSec, tol.ForksPct))
		}
	}
	if prev.WrapperNopNsPerOp > 0 {
		limit := prev.WrapperNopNsPerOp * (1 + tol.WrapperNsPct/100)
		if cur.WrapperNopNsPerOp > limit {
			add(CatWrapperNs, fmt.Sprintf("wrapper nop %.0fns exceeds %.0fns (prev %.0fns +%.0f%%)",
				cur.WrapperNopNsPerOp, limit, prev.WrapperNopNsPerOp, tol.WrapperNsPct))
		}
	}
	if cur.WrapperNopAllocsPerOp > tol.MaxWrapperAllocs {
		add(CatWrapperAllocs, fmt.Sprintf("wrapper nop path allocates %d/op, ceiling is %d",
			cur.WrapperNopAllocsPerOp, tol.MaxWrapperAllocs))
	}
	if tol.CheckpointRatio > 0 && cur.SetupPhaseMS > 0 && cur.SetupNoCkptMS > 0 {
		if cur.SetupPhaseMS > cur.SetupNoCkptMS*tol.CheckpointRatio {
			add(CatCheckpointSavings, fmt.Sprintf(
				"checkpointed setup %.1fms is %.0f%% of the uncheckpointed %.1fms, ceiling %.0f%%",
				cur.SetupPhaseMS, 100*cur.SetupPhaseMS/cur.SetupNoCkptMS,
				cur.SetupNoCkptMS, 100*tol.CheckpointRatio))
		}
	}
	if tol.ParallelRatio > 0 && cur.ColdSequentialMS > 0 && cur.ColdParallel8MS > 0 {
		procs := cur.NumCPU
		if cur.GoMaxProcs > 0 && cur.GoMaxProcs < procs {
			procs = cur.GoMaxProcs
		}
		if procs >= tol.MinScalingProcs && cur.ColdParallel8MS > cur.ColdSequentialMS*tol.ParallelRatio {
			add(CatParallelScaling, fmt.Sprintf(
				"parallel8 %.1fms is %.0f%% of sequential %.1fms on %d procs, ceiling %.0f%%",
				cur.ColdParallel8MS, 100*cur.ColdParallel8MS/cur.ColdSequentialMS,
				cur.ColdSequentialMS, procs, 100*tol.ParallelRatio))
		}
	}
	return out
}

package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// baseline mirrors the shape of a real committed entry: a 1-proc CI
// runner (parallel wall above sequential is expected there, and the
// scaling self-check stays out of play) with a healthy checkpoint
// setup ratio.
func baseline() Entry {
	return Entry{
		GitSHA:                "6d779fd",
		GOOS:                  "linux",
		GOARCH:                "amd64",
		NumCPU:                8,
		GoMaxProcs:            1,
		Functions:             86,
		ColdSequentialMS:      211.4,
		ColdParallel8MS:       216.7,
		WarmCachedMS:          0.555,
		Forks:                 8998,
		ForksPerSec:           42562.7,
		PagesShared:           71984,
		BytesAvoidedMB:        281.2,
		CheckpointNodes:       800,
		BuildsAvoided:         12000,
		SetupPhaseMS:          40,
		SetupNoCkptMS:         90,
		WrapperNopNsPerOp:     359,
		WrapperNopAllocsPerOp: 0,
	}
}

func TestCheckPassesOnIdenticalEntry(t *testing.T) {
	prev := baseline()
	if vs := Check(prev, prev, DefaultTolerances()); len(vs) != 0 {
		t.Fatalf("identical entries must pass, got %v", vs)
	}
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	prev := baseline()
	cur := prev
	cur.ColdSequentialMS *= 1.2  // < +25%
	cur.ColdParallel8MS *= 1.5   // < +75%
	cur.WarmCachedMS = 2.0       // < 0.555*2 + 2.0 slack
	cur.ForksPerSec *= 0.7       // < -40% drop
	cur.WrapperNopNsPerOp *= 1.4 // < +75%
	if vs := Check(prev, cur, DefaultTolerances()); len(vs) != 0 {
		t.Fatalf("in-tolerance drift must pass, got %v", vs)
	}
}

// TestCheckFailsOnSyntheticRegression is the ISSUE's acceptance test:
// inject a regression into each category and prove the gate trips it.
func TestCheckFailsOnSyntheticRegression(t *testing.T) {
	prev := baseline()
	cases := []struct {
		category string
		mutate   func(*Entry)
	}{
		{CatColdSequential, func(e *Entry) { e.ColdSequentialMS = prev.ColdSequentialMS * 2 }},
		{CatColdParallel8, func(e *Entry) { e.ColdParallel8MS = prev.ColdParallel8MS * 2 }},
		{CatWarmCached, func(e *Entry) { e.WarmCachedMS = 50 }},
		{CatForksPerSec, func(e *Entry) { e.ForksPerSec = prev.ForksPerSec * 0.3 }},
		{CatWrapperNs, func(e *Entry) { e.WrapperNopNsPerOp = prev.WrapperNopNsPerOp * 2 }},
		{CatWrapperAllocs, func(e *Entry) { e.WrapperNopAllocsPerOp = 1 }},
		// Checkpoints losing their bite: setup phase barely below the
		// uncheckpointed run.
		{CatCheckpointSavings, func(e *Entry) { e.SetupPhaseMS = e.SetupNoCkptMS * 0.9 }},
		// A genuinely multicore run whose 8-worker wall stays at the
		// sequential wall: the scaling self-check must trip.
		{CatParallelScaling, func(e *Entry) { e.GoMaxProcs = 8 }},
	}
	for _, tc := range cases {
		t.Run(tc.category, func(t *testing.T) {
			cur := prev
			tc.mutate(&cur)
			vs := Check(prev, cur, DefaultTolerances())
			if len(vs) != 1 {
				t.Fatalf("want exactly one violation, got %v", vs)
			}
			if vs[0].Category != tc.category {
				t.Fatalf("want category %q, got %q", tc.category, vs[0].Category)
			}
			if vs[0].Soft {
				t.Fatalf("default tolerances have no soft categories, got soft %v", vs[0])
			}
			if !Hard(vs) {
				t.Fatalf("Hard() must report the default-tolerance violation")
			}
		})
	}
}

func TestSoftCategoriesWarnInsteadOfFail(t *testing.T) {
	env := map[string]string{
		"BENCH_GATE_SOFT": "cold_sequential, cold_parallel8,forks_per_sec",
	}
	tol := TolerancesFromEnv(func(k string) string { return env[k] })

	prev := baseline()
	cur := prev
	cur.ColdSequentialMS *= 3
	cur.ForksPerSec *= 0.1
	vs := Check(prev, cur, tol)
	if len(vs) != 2 {
		t.Fatalf("want 2 violations, got %v", vs)
	}
	for _, v := range vs {
		if !v.Soft {
			t.Fatalf("softened category %q reported hard", v.Category)
		}
	}
	if Hard(vs) {
		t.Fatalf("all-soft violations must not be a hard failure")
	}

	// Structural categories stay hard even alongside softened timing.
	cur.WrapperNopAllocsPerOp = 2
	vs = Check(prev, cur, tol)
	if !Hard(vs) {
		t.Fatalf("wrapper_allocs must stay hard under BENCH_GATE_SOFT timing list")
	}
}

func TestTolerancesFromEnvOverrides(t *testing.T) {
	env := map[string]string{
		"BENCH_GATE_COLD_PCT":      "10",
		"BENCH_GATE_WARM_SLACK_MS": "0",
		"BENCH_GATE_WARM_PCT":      "5",
	}
	tol := TolerancesFromEnv(func(k string) string { return env[k] })
	if tol.ColdPct != 10 || tol.WarmSlackMS != 0 || tol.WarmPct != 5 {
		t.Fatalf("env overrides not applied: %+v", tol)
	}
	// Untouched knobs keep their defaults.
	def := DefaultTolerances()
	if tol.ParallelPct != def.ParallelPct || tol.ForksPct != def.ForksPct {
		t.Fatalf("unset knobs drifted from defaults: %+v", tol)
	}
}

// TestParseMigratesLegacySingleObject covers the pre-history
// BENCH_campaign.json form: one bare object, no "entries" wrapper.
func TestParseMigratesLegacySingleObject(t *testing.T) {
	legacy := []byte(`{
  "functions": 86,
  "cold_sequential_ms": 211.405,
  "cold_parallel8_ms": 216.681,
  "warm_cached_ms": 0.555,
  "forks": 8998,
  "forks_per_sec": 42562.7,
  "pages_shared": 71984,
  "pages_copied": 0,
  "bytes_avoided_mb": 281.1875,
  "wrapper_nop_ns_per_op": 359,
  "wrapper_nop_allocs_per_op": 1
}`)
	h, err := Parse(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Entries) != 1 {
		t.Fatalf("legacy object must migrate to one entry, got %d", len(h.Entries))
	}
	e := h.Entries[0]
	if e.Functions != 86 || e.ColdSequentialMS != 211.405 || e.WrapperNopAllocsPerOp != 1 {
		t.Fatalf("legacy fields lost in migration: %+v", e)
	}
	if e.GitSHA != "" {
		t.Fatalf("legacy entries have no provenance, got git_sha %q", e.GitSHA)
	}
}

// TestLastComparableKeysOnMachineShape pins the gate's baseline
// selection: entries from a different scheduler width or CPU count are
// never used as a timing baseline, while legacy entries without
// provenance match anything.
func TestLastComparableKeysOnMachineShape(t *testing.T) {
	one := baseline() // GoMaxProcs 1
	four := baseline()
	four.GitSHA = "fff4444"
	four.GoMaxProcs = 4
	four.ColdParallel8MS = 70
	h := &History{Entries: []Entry{one, four}}

	if got, ok := h.LastComparable(one); !ok || got.GitSHA != one.GitSHA {
		t.Fatalf("1-proc run must gate against the 1-proc entry, got %+v %v", got, ok)
	}
	if got, ok := h.LastComparable(four); !ok || got.GitSHA != four.GitSHA {
		t.Fatalf("4-proc run must gate against the 4-proc entry, got %+v %v", got, ok)
	}
	other := baseline()
	other.NumCPU = 64
	if _, ok := h.LastComparable(other); ok {
		t.Fatal("a 64-CPU run has no comparable entry in this history")
	}

	legacy := &History{Entries: []Entry{{ColdSequentialMS: 200}}}
	if _, ok := legacy.LastComparable(four); !ok {
		t.Fatal("legacy entries without provenance must remain comparable")
	}
}

func TestLoadAppendSaveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	h, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Last(); ok {
		t.Fatal("missing file must load as empty history")
	}

	h.Append(baseline())
	next := baseline()
	next.GitSHA = "abc1234"
	next.ColdSequentialMS = 190.0
	h.Append(next)
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"entries"`) {
		t.Fatalf("saved file must use the history schema:\n%s", data)
	}

	h2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2.Entries) != 2 {
		t.Fatalf("want 2 entries after round trip, got %d", len(h2.Entries))
	}
	last, ok := h2.Last()
	if !ok || last.GitSHA != "abc1234" || last.ColdSequentialMS != 190.0 {
		t.Fatalf("Last() = %+v, %v", last, ok)
	}
}

package cparse

import "testing"

// Qualifier corner cases: the robust-type predictor keys off exactly
// where const binds, so the distinction between a const pointer and a
// pointer to const must survive parsing.

func TestConstBindingMatrix(t *testing.T) {
	_, d := parseOne(t, `
int a(const char *s);
int b(char const *s);
int c(char * const s);
int e(const char * const s);
`)
	if len(d.Prototypes) != 4 {
		t.Fatalf("prototypes = %d", len(d.Prototypes))
	}
	get := func(i int) *CType { return d.Prototypes[i].Params[0].Type }

	// `const char *` and `char const *`: mutable pointer, const pointee.
	for i, name := range []string{"a", "b"} {
		p := get(i)
		if p.Const {
			t.Errorf("%s: pointer itself marked const", name)
		}
		if !p.Elem.Const {
			t.Errorf("%s: pointee lost its const", name)
		}
	}
	// `char * const`: const pointer, mutable pointee.
	if p := get(2); !p.Const || p.Elem.Const {
		t.Errorf("c: want const pointer to mutable char, got %+v -> %+v", p, p.Elem)
	}
	// `const char * const`: both.
	if p := get(3); !p.Const || !p.Elem.Const {
		t.Errorf("e: want const pointer to const char, got %+v -> %+v", p, p.Elem)
	}
}

func TestConstPointerToPointer(t *testing.T) {
	_, d := parseOne(t, `int f(const char **argv);`)
	p := d.Prototypes[0].Params[0].Type
	if p.Kind != KindPointer || p.Elem.Kind != KindPointer {
		t.Fatalf("argv = %v", p)
	}
	if p.Const || p.Elem.Const {
		t.Errorf("outer pointers must be mutable: %+v -> %+v", p, p.Elem)
	}
	if !p.Elem.Elem.Const {
		t.Error("innermost char lost its const")
	}
}

func TestFunctionPointerParamShapes(t *testing.T) {
	p := NewParser(NewTypeTable())
	p.Table().DefineTypedef("size_t", &CType{Kind: KindInt, Name: "size_t", Size: 8, Unsigned: true})
	d, err := p.Parse("search.h", `
void twalk(const void *root, void (*action)(const void *nodep, int which, int depth));
void *bsearch(const void *key, const void *base, size_t nmemb, size_t size,
	int (*compar)(const void *, const void *));
`)
	if err != nil {
		t.Fatal(err)
	}
	action := d.Prototypes[0].Params[1]
	if action.Type.Kind != KindFuncPtr || action.Name != "action" {
		t.Errorf("twalk action = %+v", action)
	}
	compar := d.Prototypes[1].Params[4]
	if compar.Type.Kind != KindFuncPtr || compar.Name != "compar" {
		t.Errorf("bsearch compar = %+v", compar)
	}
	if got := p.Table().Sizeof(compar.Type); got != PointerSize {
		t.Errorf("sizeof(funcptr) = %d", got)
	}
}

// TestSizeofNestedStructRefs: a struct embedding another struct by
// value (and an array of them) must recurse through the table.
func TestSizeofNestedStructRefs(t *testing.T) {
	p, _ := parseOne(t, `
struct timeval {
	long tv_sec;
	long tv_usec;
};
struct itimerval {
	struct timeval it_interval;
	struct timeval it_value;
};
struct ring {
	struct timeval slots[4];
	int head;
};
`)
	tv := p.Table().Sizeof(&CType{Kind: KindStruct, Struct: "timeval"})
	if tv != 16 {
		t.Fatalf("sizeof(struct timeval) = %d, want 16", tv)
	}
	if got := p.Table().Sizeof(&CType{Kind: KindStruct, Struct: "itimerval"}); got != 2*tv {
		t.Errorf("sizeof(struct itimerval) = %d, want %d", got, 2*tv)
	}
	if got := p.Table().Sizeof(&CType{Kind: KindStruct, Struct: "ring"}); got != 4*tv+4 {
		t.Errorf("sizeof(struct ring) = %d, want %d", got, 4*tv+4)
	}
	// A reference to a struct that is never defined stays size 0 even
	// when nested inside a known struct.
	p2, _ := parseOne(t, `
struct holder {
	struct mystery m;
	int tail;
};
`)
	if got := p2.Table().Sizeof(&CType{Kind: KindStruct, Struct: "holder"}); got != 4 {
		t.Errorf("sizeof(struct holder) = %d, want 4 (unknown member contributes 0)", got)
	}
}

// Package cparse parses the C declaration subset that appears in the
// simulated header corpus: preprocessor includes, typedefs, struct
// definitions, and function prototypes. The paper extracts function
// types by feeding headers to the CINT interpreter (§3.2); cparse plays
// that role, additionally computing sizeof over the simulated ABI so
// the type-driven test-case generators know how big a struct tm is.
package cparse

import "fmt"

type tokenKind uint8

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokPunct   // one of ( ) { } [ ] * , ; ...
	tokInclude // the path of an #include directive
	tokString
)

type token struct {
	kind tokenKind
	text string
	line int
}

// lexer tokenizes header text, stripping comments and non-include
// preprocessor lines.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) next() (token, error) {
	for {
		c, ok := l.peekByte()
		if !ok {
			return token{kind: tokEOF, line: l.line}, nil
		}
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated comment")
			}
			l.pos += 2
		case c == '#':
			tok, consumed, err := l.preprocessor()
			if err != nil {
				return token{}, err
			}
			if consumed {
				continue
			}
			return tok, nil
		default:
			return l.lexToken()
		}
	}
}

// preprocessor handles a # line. Include directives become tokens; all
// other directives (guards, defines) are skipped. Returns consumed=true
// when the directive produced no token.
func (l *lexer) preprocessor() (token, bool, error) {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
	lineText := l.src[start:l.pos]
	// Strip "#" and spaces.
	i := 1
	for i < len(lineText) && (lineText[i] == ' ' || lineText[i] == '\t') {
		i++
	}
	rest := lineText[i:]
	const inc = "include"
	if len(rest) < len(inc) || rest[:len(inc)] != inc {
		return token{}, true, nil
	}
	rest = rest[len(inc):]
	for len(rest) > 0 && (rest[0] == ' ' || rest[0] == '\t') {
		rest = rest[1:]
	}
	if len(rest) < 2 {
		return token{}, false, l.errf("malformed #include")
	}
	var close byte
	switch rest[0] {
	case '<':
		close = '>'
	case '"':
		close = '"'
	default:
		return token{}, false, l.errf("malformed #include")
	}
	for j := 1; j < len(rest); j++ {
		if rest[j] == close {
			return token{kind: tokInclude, text: rest[1:j], line: l.line}, false, nil
		}
	}
	return token{}, false, l.errf("unterminated #include path")
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func (l *lexer) lexToken() (token, error) {
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && (isIdentCont(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case c == '(' || c == ')' || c == '{' || c == '}' || c == '[' || c == ']' ||
		c == '*' || c == ',' || c == ';':
		l.pos++
		return token{kind: tokPunct, text: string(c), line: l.line}, nil
	case c == '.':
		// "..." variadic marker
		if l.pos+2 < len(l.src) && l.src[l.pos+1] == '.' && l.src[l.pos+2] == '.' {
			l.pos += 3
			return token{kind: tokPunct, text: "...", line: l.line}, nil
		}
		return token{}, l.errf("unexpected '.'")
	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

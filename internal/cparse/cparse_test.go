package cparse

import (
	"testing"
)

func parseOne(t *testing.T, src string) (*Parser, *HeaderDecls) {
	t.Helper()
	p := NewParser(NewTypeTable())
	d, err := p.Parse("test.h", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p, d
}

func TestParseSimplePrototype(t *testing.T) {
	_, d := parseOne(t, `char *strcpy(char *dest, const char *src);`)
	if len(d.Prototypes) != 1 {
		t.Fatalf("prototypes = %d", len(d.Prototypes))
	}
	pr := d.Prototypes[0]
	if pr.Name != "strcpy" {
		t.Errorf("name = %q", pr.Name)
	}
	if pr.Ret.Kind != KindPointer || pr.Ret.Elem.Name != "char" {
		t.Errorf("ret = %v", pr.Ret)
	}
	if len(pr.Params) != 2 {
		t.Fatalf("params = %d", len(pr.Params))
	}
	if pr.Params[0].Name != "dest" || !pr.Params[0].Type.IsPointer() {
		t.Errorf("param0 = %+v", pr.Params[0])
	}
	if !pr.Params[1].Type.Const && !pr.Params[1].Type.Elem.Const {
		t.Errorf("param1 not const: %+v", pr.Params[1].Type)
	}
}

func TestParseTypedefAndSizeof(t *testing.T) {
	p, _ := parseOne(t, `
typedef unsigned long size_t;
typedef long time_t;
size_t strlen(const char *s);
`)
	st, ok := p.Table().LookupTypedef("size_t")
	if !ok {
		t.Fatal("size_t not defined")
	}
	if st.Size != 8 || !st.Unsigned {
		t.Errorf("size_t = %+v", st)
	}
	tt, _ := p.Table().LookupTypedef("time_t")
	if p.Table().Sizeof(tt) != 8 {
		t.Errorf("sizeof(time_t) = %d", p.Table().Sizeof(tt))
	}
}

func TestParseStructTm(t *testing.T) {
	p, _ := parseOne(t, `
struct tm {
	int tm_sec;
	int tm_min;
	int tm_hour;
	int tm_mday;
	int tm_mon;
	int tm_year;
	int tm_wday;
	int tm_yday;
	int tm_isdst;
	long tm_gmtoff;
};
char *asctime(const struct tm *tm);
`)
	sz := p.Table().Sizeof(&CType{Kind: KindStruct, Struct: "tm"})
	if sz != 44 {
		t.Errorf("sizeof(struct tm) = %d, want 44 (the paper's R_ARRAY_NULL[44])", sz)
	}
}

func TestParseStructWithArrayAndPointers(t *testing.T) {
	p, _ := parseOne(t, `
struct _IO_FILE {
	int _magic;
	int _fileno;
	unsigned int _flags;
	int _ungetc;
	char *_buf;
	unsigned long _bufsize;
	unsigned long _bufpos;
	unsigned int _error;
	unsigned int _eof;
	char _reserved[104];
};
typedef struct _IO_FILE FILE;
int fclose(FILE *stream);
`)
	sz := p.Table().Sizeof(&CType{Kind: KindStruct, Struct: "_IO_FILE"})
	if sz != 152 {
		t.Errorf("sizeof(struct _IO_FILE) = %d, want 152", sz)
	}
	f, ok := p.Table().LookupTypedef("FILE")
	if !ok || f.Kind != KindStruct {
		t.Fatalf("FILE typedef = %+v, %v", f, ok)
	}
}

func TestParseIncludes(t *testing.T) {
	_, d := parseOne(t, `
#include <features.h>
#include "bits/types.h"
#define _STDIO_H 1
#ifndef FOO
#endif
int ferror(struct _IO_FILE *stream);
`[1:])
	if len(d.Includes) != 2 || d.Includes[0] != "features.h" || d.Includes[1] != "bits/types.h" {
		t.Errorf("includes = %v", d.Includes)
	}
	if len(d.Prototypes) != 1 {
		t.Errorf("prototypes = %d", len(d.Prototypes))
	}
}

func TestParseFunctionPointerParam(t *testing.T) {
	p := NewParser(NewTypeTable())
	p.Table().DefineTypedef("size_t", &CType{Kind: KindInt, Name: "size_t", Size: 8, Unsigned: true})
	d, err := p.Parse("stdlib.h",
		`void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *));`)
	if err != nil {
		t.Fatal(err)
	}
	pr := d.Prototypes[0]
	if len(pr.Params) != 4 {
		t.Fatalf("params = %d", len(pr.Params))
	}
	if pr.Params[3].Type.Kind != KindFuncPtr {
		t.Errorf("param3 = %+v", pr.Params[3].Type)
	}
	if pr.Params[3].Name != "compar" {
		t.Errorf("param3 name = %q", pr.Params[3].Name)
	}
	if pr.Ret.Kind != KindVoid {
		t.Errorf("ret = %v", pr.Ret)
	}
}

func TestParseVariadic(t *testing.T) {
	p := NewParser(NewTypeTable())
	p.Table().DefineTypedef("FILE", &CType{Kind: KindStruct, Struct: "_IO_FILE"})
	d, err := p.Parse("stdio.h", `int fprintf(FILE *stream, const char *format, ...);`)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Prototypes[0].Variadic {
		t.Error("variadic not detected")
	}
}

func TestParseVoidParams(t *testing.T) {
	_, d := parseOne(t, `int rand(void);`)
	if len(d.Prototypes[0].Params) != 0 {
		t.Errorf("params = %+v", d.Prototypes[0].Params)
	}
}

func TestParseArrayParamDecays(t *testing.T) {
	_, d := parseOne(t, `int process(char buf[64]);`)
	if !d.Prototypes[0].Params[0].Type.IsPointer() {
		t.Errorf("array param did not decay: %+v", d.Prototypes[0].Params[0].Type)
	}
}

func TestParseComments(t *testing.T) {
	_, d := parseOne(t, `
/* block comment
   spanning lines */
int abs(int j); // trailing comment
/* another */ long labs(long j);
`)
	if len(d.Prototypes) != 2 {
		t.Errorf("prototypes = %d", len(d.Prototypes))
	}
}

func TestParseMultiDeclaratorStructFields(t *testing.T) {
	p, _ := parseOne(t, `
struct point {
	int x, y;
	char *label, tag;
};
`)
	fields, ok := p.Table().StructFields("point")
	if !ok || len(fields) != 4 {
		t.Fatalf("fields = %+v", fields)
	}
	if fields[2].Type.Kind != KindPointer || fields[3].Type.Kind != KindInt {
		t.Errorf("mixed declarators wrong: %+v %+v", fields[2].Type, fields[3].Type)
	}
	sz := p.Table().Sizeof(&CType{Kind: KindStruct, Struct: "point"})
	if sz != 4+4+8+1 {
		t.Errorf("sizeof = %d", sz)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"unknown type", `frobnicate_t f(int x);`},
		{"missing semicolon", `int f(int x)`},
		{"unterminated comment", `/* int f(void);`},
		{"garbage", `@@@`},
		{"bad include", `#include foo`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := NewParser(NewTypeTable())
			if _, err := p.Parse("bad.h", tt.src); err == nil {
				t.Error("expected parse error")
			}
		})
	}
}

func TestTypedefsAccumulateAcrossHeaders(t *testing.T) {
	p := NewParser(NewTypeTable())
	if _, err := p.Parse("types.h", `typedef unsigned long size_t;`); err != nil {
		t.Fatal(err)
	}
	d, err := p.Parse("string.h", `size_t strlen(const char *s);`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Prototypes[0].Ret.Size != 8 {
		t.Errorf("ret = %+v", d.Prototypes[0].Ret)
	}
}

func TestUnsignedVariants(t *testing.T) {
	p, d := parseOne(t, `
typedef unsigned int mode_t;
unsigned long strtoul(const char *nptr, char **endptr, int base);
unsigned char next(unsigned char c);
`)
	if m, ok := p.Table().LookupTypedef("mode_t"); !ok || m.Size != 4 || !m.Unsigned {
		t.Errorf("mode_t = %+v", m)
	}
	if d.Prototypes[0].Ret.Size != 8 || !d.Prototypes[0].Ret.Unsigned {
		t.Errorf("strtoul ret = %+v", d.Prototypes[0].Ret)
	}
	// char **endptr is a pointer to pointer.
	endptr := d.Prototypes[0].Params[1].Type
	if endptr.Kind != KindPointer || endptr.Elem.Kind != KindPointer {
		t.Errorf("endptr = %v", endptr)
	}
}

func TestTypeString(t *testing.T) {
	tests := []struct {
		t    *CType
		want string
	}{
		{&CType{Kind: KindInt, Name: "int"}, "int"},
		{&CType{Kind: KindPointer, Elem: &CType{Kind: KindInt, Name: "char", Const: true}}, "const char*"},
		{&CType{Kind: KindStruct, Struct: "tm"}, "struct tm"},
		{&CType{Kind: KindVoid}, "void"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestPrototypeString(t *testing.T) {
	_, d := parseOne(t, `char *strcpy(char *dest, const char *src);`)
	s := d.Prototypes[0].String()
	if s == "" || s[len(s)-1] != ';' {
		t.Errorf("Prototype.String = %q", s)
	}
}

func TestLongLongAndSignedVariants(t *testing.T) {
	p, d := parseOne(t, `
long long bigmul(long long a, signed int b);
unsigned long long ubig(unsigned short s);
signed char sc(signed char c);
`)
	_ = p
	if d.Prototypes[0].Ret.Size != 8 {
		t.Errorf("long long size = %d", d.Prototypes[0].Ret.Size)
	}
	if d.Prototypes[1].Ret.Size != 8 || !d.Prototypes[1].Ret.Unsigned {
		t.Errorf("unsigned long long = %+v", d.Prototypes[1].Ret)
	}
	if d.Prototypes[1].Params[0].Type.Size != 2 {
		t.Errorf("unsigned short = %+v", d.Prototypes[1].Params[0].Type)
	}
	if d.Prototypes[2].Params[0].Type.Size != 1 {
		t.Errorf("signed char = %+v", d.Prototypes[2].Params[0].Type)
	}
}

func TestPointerToConstAndConstPointer(t *testing.T) {
	_, d := parseOne(t, `
char * const cp(char const *s);
`)
	pr := d.Prototypes[0]
	if !pr.Ret.Const {
		t.Error("const pointer lost its const")
	}
	if !pr.Params[0].Type.Elem.Const {
		t.Error("pointer-to-const lost its const")
	}
}

func TestScanIncludesIgnoresBody(t *testing.T) {
	incs, err := ScanIncludes(`#include <a.h>
int f(unknown_type x); /* body need not parse for include scanning */
#include "b/c.h"
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 2 || incs[0] != "a.h" || incs[1] != "b/c.h" {
		t.Errorf("includes = %v", incs)
	}
	if _, err := ScanIncludes("/* unterminated"); err == nil {
		t.Error("lex error not propagated")
	}
}

func TestSizeofUnknownStructIsZero(t *testing.T) {
	tt := NewTypeTable()
	if sz := tt.Sizeof(&CType{Kind: KindStruct, Struct: "mystery"}); sz != 0 {
		t.Errorf("sizeof(unknown) = %d", sz)
	}
	if sz := tt.Sizeof(&CType{Kind: KindVoid}); sz != 0 {
		t.Errorf("sizeof(void) = %d", sz)
	}
	if sz := tt.Sizeof(&CType{Kind: KindFuncPtr}); sz != PointerSize {
		t.Errorf("sizeof(funcptr) = %d", sz)
	}
}

package cparse

import (
	"fmt"
	"strconv"
)

// HeaderDecls is everything extracted from one header file.
type HeaderDecls struct {
	Includes   []string
	Prototypes []*Prototype
}

// ScanIncludes returns the #include paths of a header without parsing
// its declarations. Callers use it to parse dependency headers first so
// typedefs are defined before use.
func ScanIncludes(src string) ([]string, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	var incs []string
	for _, t := range toks {
		if t.kind == tokInclude {
			incs = append(incs, t.text)
		}
	}
	return incs, nil
}

// Parser parses header sources against a shared type table. Parse is
// called once per header; typedefs and struct definitions accumulate so
// later headers can use earlier types, like a preprocessor would give.
type Parser struct {
	table *TypeTable
}

// NewParser returns a parser over the given (usually fresh) type table.
func NewParser(table *TypeTable) *Parser { return &Parser{table: table} }

// Table exposes the accumulated type information.
func (p *Parser) Table() *TypeTable { return p.table }

// Parse processes one header source.
func (p *Parser) Parse(name, src string) (*HeaderDecls, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, fmt.Errorf("cparse: %s: %w", name, err)
	}
	st := &state{p: p, toks: toks}
	decls := &HeaderDecls{}
	for {
		t := st.peek()
		switch {
		case t.kind == tokEOF:
			return decls, nil
		case t.kind == tokInclude:
			st.advance()
			decls.Includes = append(decls.Includes, t.text)
		case t.kind == tokIdent && t.text == "typedef":
			if err := st.parseTypedef(); err != nil {
				return nil, fmt.Errorf("cparse: %s: %w", name, err)
			}
		case t.kind == tokIdent && t.text == "struct" && st.peekIsStructDef():
			if err := st.parseStructDef(); err != nil {
				return nil, fmt.Errorf("cparse: %s: %w", name, err)
			}
		case t.kind == tokIdent:
			proto, err := st.parsePrototype()
			if err != nil {
				return nil, fmt.Errorf("cparse: %s: %w", name, err)
			}
			decls.Prototypes = append(decls.Prototypes, proto)
		default:
			return nil, fmt.Errorf("cparse: %s: line %d: unexpected token %q", name, t.line, t.text)
		}
	}
}

type state struct {
	p    *Parser
	toks []token
	pos  int
}

func (s *state) peek() token { return s.toks[s.pos] }

func (s *state) peekAt(n int) token {
	if s.pos+n >= len(s.toks) {
		return s.toks[len(s.toks)-1]
	}
	return s.toks[s.pos+n]
}

func (s *state) advance() token {
	t := s.toks[s.pos]
	if t.kind != tokEOF {
		s.pos++
	}
	return t
}

func (s *state) expect(text string) error {
	t := s.advance()
	if t.text != text {
		return fmt.Errorf("line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

// peekIsStructDef distinguishes `struct tag { ... };` (a definition)
// from `struct tag func(...)` (a prototype with struct return type).
func (s *state) peekIsStructDef() bool {
	// struct <ident> {
	return s.peekAt(1).kind == tokIdent && s.peekAt(2).text == "{"
}

// parseBaseType parses a type up to (but not including) pointer stars:
// [const] (builtin-multiword | struct tag | typedef-name).
func (s *state) parseBaseType() (*CType, error) {
	t := s.peek()
	isConst := false
	for t.kind == tokIdent && (t.text == "const" || t.text == "extern" || t.text == "volatile" || t.text == "restrict") {
		if t.text == "const" {
			isConst = true
		}
		s.advance()
		t = s.peek()
	}
	if t.kind != tokIdent {
		return nil, fmt.Errorf("line %d: expected type, got %q", t.line, t.text)
	}
	var base *CType
	switch t.text {
	case "struct":
		s.advance()
		tag := s.advance()
		if tag.kind != tokIdent {
			return nil, fmt.Errorf("line %d: expected struct tag", tag.line)
		}
		base = &CType{Kind: KindStruct, Name: "struct " + tag.text, Struct: tag.text}
	case "unsigned", "signed":
		sign := t.text
		s.advance()
		u := sign == "unsigned"
		nt := s.peek()
		base = &CType{Kind: KindInt, Name: "int", Size: 4, Unsigned: u}
		if nt.kind == tokIdent {
			if b := builtinType(nt.text); b != nil && b.Kind == KindInt {
				s.advance()
				b2 := *b
				b2.Unsigned = u
				b2.Name = sign + " " + b2.Name
				if nt.text == "long" {
					s.skipExtraLong(&b2)
				}
				base = &b2
			} else {
				base.Name = sign + " int"
			}
		} else {
			base.Name = sign + " int"
		}
	case "long":
		s.advance()
		b := *builtinType("long")
		s.skipExtraLong(&b)
		base = &b
	default:
		if b := builtinType(t.text); b != nil {
			s.advance()
			bb := *b
			base = &bb
		} else if td, ok := s.p.table.LookupTypedef(t.text); ok {
			s.advance()
			bb := *td
			bb.Name = t.text
			base = &bb
		} else {
			return nil, fmt.Errorf("line %d: unknown type %q", t.line, t.text)
		}
	}
	// Trailing `const` (e.g. `char const`).
	for s.peek().kind == tokIdent && s.peek().text == "const" {
		isConst = true
		s.advance()
	}
	base.Const = base.Const || isConst
	return base, nil
}

func (s *state) skipExtraLong(b *CType) {
	// "long long" and "long int" collapse to the 8-byte long.
	for s.peek().kind == tokIdent && (s.peek().text == "long" || s.peek().text == "int") {
		if s.peek().text == "long" {
			b.Name = b.Name + " long"
		}
		s.advance()
	}
	b.Size = 8
}

// parseStars wraps base in pointers for each '*'.
func (s *state) parseStars(base *CType) *CType {
	for s.peek().text == "*" {
		s.advance()
		base = &CType{Kind: KindPointer, Name: base.Name + "*", Elem: base}
		// `* const` pointers.
		for s.peek().kind == tokIdent && s.peek().text == "const" {
			s.advance()
			base.Const = true
		}
	}
	return base
}

// parseTypedef handles `typedef <type> name;` including
// `typedef struct tag name;` forward declarations.
func (s *state) parseTypedef() error {
	s.advance() // typedef
	base, err := s.parseBaseType()
	if err != nil {
		return err
	}
	base = s.parseStars(base)
	nameTok := s.advance()
	if nameTok.kind != tokIdent {
		return fmt.Errorf("line %d: expected typedef name, got %q", nameTok.line, nameTok.text)
	}
	if err := s.expect(";"); err != nil {
		return err
	}
	s.p.table.DefineTypedef(nameTok.text, base)
	return nil
}

// parseStructDef handles `struct tag { fields };`.
func (s *state) parseStructDef() error {
	s.advance() // struct
	tag := s.advance()
	if err := s.expect("{"); err != nil {
		return err
	}
	var fields []CField
	for s.peek().text != "}" {
		ft, err := s.parseBaseType()
		if err != nil {
			return err
		}
		// One or more declarators: `int a, *b, c[4];`
		for {
			dt := s.parseStars(ft)
			nameTok := s.advance()
			if nameTok.kind != tokIdent {
				return fmt.Errorf("line %d: expected field name, got %q", nameTok.line, nameTok.text)
			}
			if s.peek().text == "[" {
				s.advance()
				numTok := s.advance()
				n, err := strconv.Atoi(numTok.text)
				if err != nil {
					return fmt.Errorf("line %d: bad array length %q", numTok.line, numTok.text)
				}
				if err := s.expect("]"); err != nil {
					return err
				}
				dt = &CType{Kind: KindArray, Name: dt.Name, Elem: dt, Len: n}
			}
			fields = append(fields, CField{Name: nameTok.text, Type: dt})
			if s.peek().text != "," {
				break
			}
			s.advance()
		}
		if err := s.expect(";"); err != nil {
			return err
		}
	}
	s.advance() // }
	if err := s.expect(";"); err != nil {
		return err
	}
	s.p.table.DefineStruct(tag.text, fields)
	return nil
}

// parsePrototype handles `<type> name(params);`.
func (s *state) parsePrototype() (*Prototype, error) {
	ret, err := s.parseBaseType()
	if err != nil {
		return nil, err
	}
	ret = s.parseStars(ret)
	nameTok := s.advance()
	if nameTok.kind != tokIdent {
		return nil, fmt.Errorf("line %d: expected function name, got %q", nameTok.line, nameTok.text)
	}
	if err := s.expect("("); err != nil {
		return nil, err
	}
	proto := &Prototype{Name: nameTok.text, Ret: ret}
	if s.peek().text == ")" {
		s.advance()
	} else {
		for {
			if s.peek().text == "..." {
				s.advance()
				proto.Variadic = true
				break
			}
			param, err := s.parseParam()
			if err != nil {
				return nil, err
			}
			// `(void)` means no parameters.
			if !(param.Type.Kind == KindVoid && param.Name == "" && len(proto.Params) == 0 && s.peek().text == ")") {
				proto.Params = append(proto.Params, param)
			}
			if s.peek().text != "," {
				break
			}
			s.advance()
		}
		if err := s.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := s.expect(";"); err != nil {
		return nil, err
	}
	return proto, nil
}

// parseParam handles one parameter, including function pointers like
// `int (*compar)(const void *, const void *)`.
func (s *state) parseParam() (Param, error) {
	base, err := s.parseBaseType()
	if err != nil {
		return Param{}, err
	}
	t := s.parseStars(base)
	// Function pointer declarator: ( * name? ) ( params )
	if s.peek().text == "(" && s.peekAt(1).text == "*" {
		s.advance() // (
		s.advance() // *
		var name string
		if s.peek().kind == tokIdent {
			name = s.advance().text
		}
		if err := s.expect(")"); err != nil {
			return Param{}, err
		}
		if err := s.expect("("); err != nil {
			return Param{}, err
		}
		depth := 1
		for depth > 0 {
			tk := s.advance()
			switch tk.text {
			case "(":
				depth++
			case ")":
				depth--
			}
			if tk.kind == tokEOF {
				return Param{}, fmt.Errorf("unterminated function pointer parameter")
			}
		}
		return Param{Name: name, Type: &CType{Kind: KindFuncPtr, Name: "(*)()"}}, nil
	}
	var name string
	if s.peek().kind == tokIdent {
		name = s.advance().text
	}
	// Array parameter decays to pointer: `char buf[64]`.
	if s.peek().text == "[" {
		s.advance()
		if s.peek().kind == tokNumber {
			s.advance()
		}
		if err := s.expect("]"); err != nil {
			return Param{}, err
		}
		t = &CType{Kind: KindPointer, Name: t.Name + "*", Elem: t}
	}
	return Param{Name: name, Type: t}, nil
}

package cparse

import (
	"strings"
	"testing"
)

// fuzzSeeds are header fragments spanning the grammar: scalar and
// pointer params, const qualifiers, typedefs, struct definitions and
// uses, variadics, function pointers, includes, and a few malformed
// inputs the parser must reject without panicking. The checked-in
// corpus under testdata/fuzz mirrors these plus minimized crashers.
var fuzzSeeds = []string{
	"int f(int x);",
	"void g(void);",
	"char *strcpy(char *dest, const char *src);",
	"size_t strlen(const char *s);",
	"typedef unsigned long size_t;\nsize_t f(size_t n);",
	"struct tm { int tm_sec; int tm_min; };\nstruct tm *gmtime(const long *timep);",
	"int printf(const char *format, ...);",
	"void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *));",
	"#include <stddef.h>\nint h(double d);",
	"int a(int, int);",
	"const char *b(void);",
	"int bad(",
	"typedef;",
	"struct { int x; } anon(void);",
	"int weird(unsigned long long x, signed char c);",
	"",
	";;;",
	"int arr(char buf[16]);",
}

// FuzzParsePrototype asserts two properties over arbitrary header
// sources: the parser never panics (errors are fine), and parsing is a
// fixpoint under rendering — every accepted prototype re-renders to a
// string that parses to the identical rendering. The second property is
// what lets tools archive Prototype.String() output and re-ingest it.
func FuzzParsePrototype(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		table := NewTypeTable()
		decls, err := NewParser(table).Parse("fuzz.h", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, proto := range decls.Prototypes {
			rendered := proto.String()
			// Re-parse against the same table so typedefs and struct
			// tags the source introduced stay resolvable.
			again, err := NewParser(table).Parse("fuzz2.h", strings.TrimSuffix(rendered, ";")+";")
			if err != nil {
				t.Fatalf("rendered prototype does not re-parse:\nsource: %q\nrendered: %q\nerr: %v", src, rendered, err)
			}
			if len(again.Prototypes) != 1 {
				t.Fatalf("rendered prototype parsed to %d prototypes: %q", len(again.Prototypes), rendered)
			}
			if got := again.Prototypes[0].String(); got != rendered {
				t.Fatalf("render not a fixpoint:\nfirst:  %q\nsecond: %q", rendered, got)
			}
		}
	})
}

// TestFuzzSeedsRoundTrip runs the fuzz property over the seed corpus in
// a plain test, so `go test` exercises it without -fuzz.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	for _, seed := range fuzzSeeds {
		table := NewTypeTable()
		decls, err := NewParser(table).Parse("seed.h", seed)
		if err != nil {
			continue
		}
		for _, proto := range decls.Prototypes {
			rendered := proto.String()
			again, err := NewParser(table).Parse("seed2.h", rendered)
			if err != nil {
				t.Errorf("seed %q: rendered %q does not re-parse: %v", seed, rendered, err)
				continue
			}
			if len(again.Prototypes) != 1 || again.Prototypes[0].String() != rendered {
				t.Errorf("seed %q: render not a fixpoint: %q", seed, rendered)
			}
		}
	}
}

package cparse

import (
	"fmt"
	"strings"
)

// Kind classifies a C type.
type Kind uint8

// Type kinds.
const (
	KindVoid Kind = iota + 1
	KindInt       // any integer type (size + signedness in the fields)
	KindFloat
	KindDouble
	KindPointer
	KindStruct
	KindFuncPtr
	KindArray
)

// CType is a parsed C type. Types are trees: a pointer has an Elem, a
// struct has Fields, an array has Elem and Len.
type CType struct {
	Kind     Kind
	Name     string // spelled name: "int", "size_t", "struct tm", ...
	Const    bool
	Size     int // sizeof for scalar kinds (integers)
	Unsigned bool
	Elem     *CType   // pointer/array element
	Len      int      // array length
	Struct   string   // struct tag for KindStruct
	Fields   []CField // resolved struct fields (set after resolution)
}

// CField is one member of a struct definition.
type CField struct {
	Name string
	Type *CType
}

// PointerSize is the simulated ABI pointer width.
const PointerSize = 8

// String renders the type approximately as C source.
func (t *CType) String() string {
	if t == nil {
		return "?"
	}
	var b strings.Builder
	if t.Const {
		b.WriteString("const ")
	}
	switch t.Kind {
	case KindVoid:
		b.WriteString("void")
	case KindInt, KindFloat, KindDouble:
		b.WriteString(t.Name)
	case KindStruct:
		fmt.Fprintf(&b, "struct %s", t.Struct)
	case KindPointer:
		b.WriteString(t.Elem.String())
		b.WriteString("*")
	case KindArray:
		fmt.Fprintf(&b, "%s[%d]", t.Elem.String(), t.Len)
	case KindFuncPtr:
		b.WriteString("int (*)()")
	}
	return b.String()
}

// IsPointer reports whether the type is any pointer (including function
// pointers).
func (t *CType) IsPointer() bool {
	return t != nil && (t.Kind == KindPointer || t.Kind == KindFuncPtr)
}

// Prototype is a parsed function declaration.
type Prototype struct {
	Name     string
	Ret      *CType
	Params   []Param
	Variadic bool
}

// Param is one formal parameter.
type Param struct {
	Name string
	Type *CType
}

func (p *Prototype) String() string {
	var b strings.Builder
	b.WriteString(p.Ret.String())
	b.WriteString(" ")
	b.WriteString(p.Name)
	b.WriteString("(")
	for i, pa := range p.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(pa.Type.String())
		if pa.Name != "" {
			b.WriteString(" " + pa.Name)
		}
	}
	if p.Variadic {
		if len(p.Params) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("...")
	}
	b.WriteString(");")
	return b.String()
}

// TypeTable accumulates typedefs and struct definitions across parsed
// headers, so that sizeof can be computed after all headers are seen.
type TypeTable struct {
	typedefs map[string]*CType
	structs  map[string][]CField
}

// NewTypeTable returns a table preloaded with the builtin scalar types
// of the simulated ABI (packed layout, 8-byte pointers and longs).
func NewTypeTable() *TypeTable {
	tt := &TypeTable{
		typedefs: make(map[string]*CType),
		structs:  make(map[string][]CField),
	}
	return tt
}

func builtinType(name string) *CType {
	switch name {
	case "void":
		return &CType{Kind: KindVoid, Name: "void"}
	case "char":
		return &CType{Kind: KindInt, Name: "char", Size: 1}
	case "short":
		return &CType{Kind: KindInt, Name: "short", Size: 2}
	case "int":
		return &CType{Kind: KindInt, Name: "int", Size: 4}
	case "long":
		return &CType{Kind: KindInt, Name: "long", Size: 8}
	case "float":
		return &CType{Kind: KindFloat, Name: "float", Size: 4}
	case "double":
		return &CType{Kind: KindDouble, Name: "double", Size: 8}
	}
	return nil
}

// DefineTypedef records name as an alias for t.
func (tt *TypeTable) DefineTypedef(name string, t *CType) {
	tt.typedefs[name] = t
}

// DefineStruct records the fields of struct tag.
func (tt *TypeTable) DefineStruct(tag string, fields []CField) {
	tt.structs[tag] = fields
}

// LookupTypedef resolves a typedef name.
func (tt *TypeTable) LookupTypedef(name string) (*CType, bool) {
	t, ok := tt.typedefs[name]
	return t, ok
}

// StructFields returns the field list of struct tag.
func (tt *TypeTable) StructFields(tag string) ([]CField, bool) {
	f, ok := tt.structs[tag]
	return f, ok
}

// Sizeof computes the size of t under the simulated ABI: packed struct
// layout (no padding), 8-byte pointers. Unknown structs have size 0.
func (tt *TypeTable) Sizeof(t *CType) int {
	switch t.Kind {
	case KindVoid:
		return 0
	case KindInt, KindFloat, KindDouble:
		return t.Size
	case KindPointer, KindFuncPtr:
		return PointerSize
	case KindArray:
		return t.Len * tt.Sizeof(t.Elem)
	case KindStruct:
		fields, ok := tt.structs[t.Struct]
		if !ok {
			return 0
		}
		var total int
		for _, f := range fields {
			total += tt.Sizeof(f.Type)
		}
		return total
	}
	return 0
}

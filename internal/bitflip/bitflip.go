// Package bitflip implements the evaluation the paper's §9 leaves as
// future work: injecting bit-flips instead of type-driven exceptional
// values. Starting from a *valid* call, single bits of the argument
// words are flipped — the classic register-fault model — and the call
// is run against the bare library and against the robustness wrapper.
// A flipped pointer usually lands in unmapped memory, so the unwrapped
// library crashes where the wrapper's argument checks reject the call.
package bitflip

import (
	"fmt"
	"sort"
	"strings"

	"healers/internal/clib"
	"healers/internal/csim"
	"healers/internal/decl"
	"healers/internal/extract"
	"healers/internal/gens"
	"healers/internal/injector"
	"healers/internal/wrapper"
)

// Config tunes a bit-flip campaign.
type Config struct {
	// Bits lists the bit positions to flip in each argument word; nil
	// means every 4th bit of the low 48 (pointers) plus the sign bit.
	Bits []int
	// StepBudget bounds each trial.
	StepBudget int
}

// DefaultConfig flips a spread of bit positions.
func DefaultConfig() Config {
	bits := []int{0, 1, 3, 7, 12, 16, 21, 26, 31, 34, 38, 42, 46, 63}
	return Config{Bits: bits, StepBudget: 100_000}
}

// Result aggregates one function's bit-flip trials.
type Result struct {
	Func             string
	Trials           int
	UnwrappedCrashes int
	WrappedCrashes   int
	WrappedRejected  int // trials the wrapper turned into clean errors
}

// PreventionRate is the fraction of unwrapped crashes the wrapper
// eliminated.
func (r Result) PreventionRate() float64 {
	if r.UnwrappedCrashes == 0 {
		return 1
	}
	return 1 - float64(r.WrappedCrashes)/float64(r.UnwrappedCrashes)
}

// Campaign is the full bit-flip evaluation.
type Campaign struct {
	Results []Result
}

// Totals sums all functions.
func (c *Campaign) Totals() Result {
	total := Result{Func: "TOTAL"}
	for _, r := range c.Results {
		total.Trials += r.Trials
		total.UnwrappedCrashes += r.UnwrappedCrashes
		total.WrappedCrashes += r.WrappedCrashes
		total.WrappedRejected += r.WrappedRejected
	}
	return total
}

// Format renders the campaign as a table.
func (c *Campaign) Format() string {
	var b strings.Builder
	b.WriteString("Bit-flip fault injection (§9 future work)\n")
	fmt.Fprintf(&b, "%-14s %7s %10s %9s %9s %11s\n",
		"function", "trials", "unwrapped", "wrapped", "rejected", "prevention")
	rows := append([]Result(nil), c.Results...)
	rows = append(rows, c.Totals())
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %7d %10d %9d %9d %10.1f%%\n",
			r.Func, r.Trials, r.UnwrappedCrashes, r.WrappedCrashes,
			r.WrappedRejected, 100*r.PreventionRate())
	}
	return b.String()
}

// Evaluate runs the campaign over the named functions.
func Evaluate(lib *clib.Library, ext *extract.Result, decls *decl.DeclSet, names []string, cfg Config) (*Campaign, error) {
	if cfg.Bits == nil {
		cfg.Bits = DefaultConfig().Bits
	}
	if cfg.StepBudget == 0 {
		cfg.StepBudget = DefaultConfig().StepBudget
	}
	sort.Strings(names)
	campaign := &Campaign{}
	template := injector.NewTemplateProcess()

	for _, name := range names {
		fi, ok := ext.Lookup(name)
		if !ok || fi.Proto == nil {
			return nil, fmt.Errorf("bitflip: %s has no prototype", name)
		}
		fn, ok := lib.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bitflip: %s not in library", name)
		}
		res := Result{Func: name}

		// Benign default probes form the valid baseline call.
		defaults := make([]*gens.Probe, len(fi.Proto.Params))
		for i, param := range fi.Proto.Params {
			defaults[i] = gens.ForParam(param, ext.Table).Default()
		}

		runTrial := func(argIdx, bit int, wrapped bool) (csim.Outcome, bool) {
			child := template.Fork()
			child.SetStepBudget(cfg.StepBudget)
			args := make([]uint64, len(defaults))
			mat := child.Run(func() uint64 {
				for i, pr := range defaults {
					args[i] = pr.Build(child)
				}
				return 0
			})
			if mat.Kind != csim.OutcomeReturn {
				return csim.Outcome{}, false
			}
			args[argIdx] ^= 1 << bit
			child.ClearErrno()
			if wrapped {
				w := wrapper.Attach(child, lib, decls, wrapper.DefaultOptions())
				out := child.Run(func() uint64 { return w.Call(child, name, args...) })
				return out, true
			}
			out := child.Run(func() uint64 { return fn.Impl(child, args) })
			return out, true
		}

		for argIdx := range defaults {
			for _, bit := range cfg.Bits {
				plain, ok := runTrial(argIdx, bit, false)
				if !ok {
					continue
				}
				res.Trials++
				if !plain.Crashed() {
					continue // this flip was harmless even unwrapped
				}
				res.UnwrappedCrashes++
				wrapped, ok := runTrial(argIdx, bit, true)
				if !ok {
					continue
				}
				if wrapped.Crashed() {
					res.WrappedCrashes++
				} else {
					res.WrappedRejected++
				}
			}
		}
		campaign.Results = append(campaign.Results, res)
	}
	return campaign, nil
}

package bitflip

import (
	"strings"
	"testing"

	"healers/internal/clib"
	"healers/internal/corpus"
	"healers/internal/decl"
	"healers/internal/extract"
	"healers/internal/injector"
)

func TestBitFlipPrevention(t *testing.T) {
	lib := clib.New()
	ext, err := extract.Run(corpus.Build(lib))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"asctime", "strcpy", "strlen", "fgetc", "memcpy"}
	campaign, err := injector.New(lib, injector.DefaultConfig()).InjectAll(ext, names)
	if err != nil {
		t.Fatal(err)
	}
	decls := decl.ApplySemiAutoEdits(campaign.Decls())
	bf, err := Evaluate(lib, ext, decls, names, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", bf.Format())
	total := bf.Totals()
	if total.Trials == 0 {
		t.Fatal("no trials executed")
	}
	if total.UnwrappedCrashes == 0 {
		t.Fatal("bit flips never crashed the bare library — pointer flips should")
	}
	if rate := total.PreventionRate(); rate < 0.9 {
		t.Errorf("prevention rate = %.2f, want >= 0.9", rate)
	}
	if !strings.Contains(bf.Format(), "TOTAL") {
		t.Error("missing totals row")
	}
}

func TestBitFlipUnknownFunction(t *testing.T) {
	lib := clib.New()
	ext, err := extract.Run(corpus.Build(lib))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(lib, ext, decl.NewDeclSet(), []string{"no_such_fn"}, Config{}); err == nil {
		t.Error("unknown function accepted")
	}
}

// Package corpus builds the synthetic /usr/include tree, the online
// manual, and the shared-object image for the simulated C library.
//
// The corpus is engineered to reproduce the defect statistics the paper
// measured on SUSE Linux 7.2 (§3.2): only about half of the library's
// functions have a manual page, a small number of pages list no header
// files, some list wrong headers, and a few symbols are declared in no
// header at all. The extraction pipeline (package extract) must cope
// with all of it, exactly as HEALERS had to.
package corpus

import (
	"fmt"
	"sort"
	"strings"

	"healers/internal/clib"
	"healers/internal/elfsim"
)

// Corpus is the complete extraction input: header tree, manual, and
// shared object.
type Corpus struct {
	// Headers maps header path (as included, e.g. "stdio.h" or
	// "bits/libio.h") to source text.
	Headers map[string]string
	// Man maps function name to manual page text. Absence means the
	// function has no manual page.
	Man map[string]string
	// Object is the serialized shared-object image.
	Object []byte
}

// Soname of the simulated library.
const Soname = "libhealers.so.2.2"

// noManPage lists the external functions that have no manual page
// (23 of the 106 externals, tuned so that total coverage lands at the
// paper's ~51% of all global functions).
var noManPage = map[string]bool{
	"isalpha": true, "isdigit": true, "isalnum": true, "isspace": true,
	"isupper": true, "islower": true, "toupper": true, "tolower": true,
	"strerror": true,
	"bcopy":    true, "bzero": true,
	"difftime": true, "time": true,
	"abs": true, "labs": true, "getenv": true, "bsearch": true,
	"dup": true, "calloc": true, "realloc": true,
	"setbuf": true, "perror": true, "gets": true,
}

// wrongManHeaders lists manual pages whose SYNOPSIS names headers that
// do not declare the function (the paper's 7.7%).
var wrongManHeaders = map[string][]string{
	"telldir":     {"sys/dir.h"},     // does not exist
	"seekdir":     {"sys/dir.h"},     // does not exist
	"cfgetispeed": {"sys/termios.h"}, // does not exist
	"mkstemp":     {"unistd.h"},      // exists but declares no mkstemp
	"strcoll":     {"locale.h"},      // exists but declares no strcoll
	"fdopen":      {"sys/stdio.h"},   // does not exist
}

// noHeaderManPages lists manual pages whose SYNOPSIS cites no headers
// at all (the paper's 1.2%).
var noHeaderManPages = map[string]bool{
	"fflush": true,
}

// extraHeaderDecls duplicates some prototypes in a second header, the
// "defined multiple times in different header files" phenomenon.
var extraHeaderDecls = map[string]string{
	"open":   "bits/fcntl2.h",
	"creat":  "bits/fcntl2.h",
	"memcpy": "bits/string2.h",
	"memset": "bits/string2.h",
	"strcpy": "bits/string2.h",
}

// Build assembles the corpus for the given library.
func Build(lib *clib.Library) *Corpus {
	c := &Corpus{
		Headers: make(map[string]string),
		Man:     make(map[string]string),
	}
	c.buildBaseHeaders()
	c.placePrototypes(lib)
	c.buildManPages(lib)
	c.buildObject(lib)
	return c
}

// buildBaseHeaders writes the type-definition headers every public
// header depends on.
func (c *Corpus) buildBaseHeaders() {
	c.Headers["features.h"] = "#define _FEATURES_H 1\n"
	c.Headers["bits/types.h"] = `#ifndef _BITS_TYPES_H
#define _BITS_TYPES_H 1
typedef unsigned long size_t;
typedef long ssize_t;
typedef long time_t;
typedef long off_t;
typedef unsigned int mode_t;
typedef unsigned long dev_t;
typedef unsigned long ino_t;
typedef unsigned int speed_t;
typedef unsigned int tcflag_t;
typedef unsigned char cc_t;
#endif
`
	c.Headers["bits/libio.h"] = `#include "bits/types.h"
struct _IO_FILE {
	int _magic;
	int _fileno;
	unsigned int _flags;
	int _ungetc;
	char *_buf;
	unsigned long _bufsize;
	unsigned long _bufpos;
	unsigned int _error;
	unsigned int _eof;
	char _reserved[104];
};
typedef struct _IO_FILE FILE;
`
	c.Headers["bits/dirstream.h"] = `#include "bits/types.h"
struct __dirstream {
	int _magic;
	int _fd;
	unsigned long _pos;
	char *_buf;
	char _reserved[40];
};
typedef struct __dirstream DIR;
struct dirent {
	unsigned long d_ino;
	char d_name[256];
};
`
	c.Headers["bits/tm.h"] = `struct tm {
	int tm_sec;
	int tm_min;
	int tm_hour;
	int tm_mday;
	int tm_mon;
	int tm_year;
	int tm_wday;
	int tm_yday;
	int tm_isdst;
	long tm_gmtoff;
};
`
	c.Headers["bits/stat.h"] = `#include "bits/types.h"
struct stat {
	dev_t st_dev;
	ino_t st_ino;
	mode_t st_mode;
	unsigned int __pad0;
	off_t st_size;
	char __reserved[32];
};
`
	c.Headers["bits/termios.h"] = `#include "bits/types.h"
struct termios {
	tcflag_t c_iflag;
	tcflag_t c_oflag;
	tcflag_t c_cflag;
	tcflag_t c_lflag;
	cc_t c_cc[32];
	speed_t c_ispeed;
	speed_t c_ospeed;
};
`
	// locale.h exists but declares nothing relevant — one of the
	// wrong-header man page targets.
	c.Headers["locale.h"] = `#include <features.h>
struct lconv {
	char *decimal_point;
	char grouping;
};
char *setlocale(int category, const char *locale);
`
}

// headerPrelude maps each public header to the include lines it needs.
var headerPrelude = map[string][]string{
	"string.h":             {"features.h", "bits/types.h"},
	"strings.h":            {"features.h", "bits/types.h"},
	"stdio.h":              {"features.h", "bits/types.h", "bits/libio.h"},
	"stdlib.h":             {"features.h", "bits/types.h"},
	"time.h":               {"features.h", "bits/types.h", "bits/tm.h"},
	"dirent.h":             {"features.h", "bits/types.h", "bits/dirstream.h"},
	"termios.h":            {"features.h", "bits/types.h", "bits/termios.h"},
	"unistd.h":             {"features.h", "bits/types.h"},
	"fcntl.h":              {"features.h", "bits/types.h"},
	"sys/stat.h":           {"features.h", "bits/types.h", "bits/stat.h"},
	"ctype.h":              {"features.h"},
	"bits/libc-internal.h": {"bits/types.h", "bits/libio.h", "bits/dirstream.h", "bits/tm.h", "bits/stat.h"},
	"bits/errno.h":         {"bits/types.h"},
	"bits/assert.h":        {"bits/types.h"},
	"bits/fcntl2.h":        {"bits/types.h"},
	"bits/string2.h":       {"bits/types.h"},
}

// placePrototypes writes every declared function's prototype into its
// primary header (per clib metadata) and the engineered duplicates.
func (c *Corpus) placePrototypes(lib *clib.Library) {
	byHeader := make(map[string][]string)
	for _, name := range lib.Names() {
		f, _ := lib.Lookup(name)
		if f.Header == "" || f.Proto == "" {
			continue // deliberately undeclared symbols
		}
		byHeader[f.Header] = append(byHeader[f.Header], f.Proto)
		if extra, ok := extraHeaderDecls[f.Name]; ok {
			byHeader[extra] = append(byHeader[extra], f.Proto)
		}
	}
	paths := make([]string, 0, len(byHeader))
	for h := range byHeader {
		paths = append(paths, h)
	}
	sort.Strings(paths)
	for _, h := range paths {
		var b strings.Builder
		guard := strings.ToUpper(strings.NewReplacer("/", "_", ".", "_").Replace(h))
		fmt.Fprintf(&b, "#ifndef _%s\n#define _%s 1\n", guard, guard)
		for _, inc := range headerPrelude[h] {
			fmt.Fprintf(&b, "#include <%s>\n", inc)
		}
		b.WriteString("\n")
		for _, proto := range byHeader[h] {
			b.WriteString(proto)
			b.WriteString("\n")
		}
		b.WriteString("#endif\n")
		c.Headers[h] = b.String()
	}
}

// buildManPages writes the simulated online manual.
func (c *Corpus) buildManPages(lib *clib.Library) {
	for _, f := range lib.External() {
		if noManPage[f.Name] {
			continue
		}
		headers := []string{f.Header}
		if wrong, ok := wrongManHeaders[f.Name]; ok {
			headers = wrong
		}
		if noHeaderManPages[f.Name] {
			headers = nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s(3)                 Library Functions Manual                 %s(3)\n\n",
			strings.ToUpper(f.Name), strings.ToUpper(f.Name))
		fmt.Fprintf(&b, "NAME\n       %s - simulated C library function\n\n", f.Name)
		b.WriteString("SYNOPSIS\n")
		for _, h := range headers {
			fmt.Fprintf(&b, "       #include <%s>\n", h)
		}
		if len(headers) > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "       %s\n\n", f.Proto)
		b.WriteString("DESCRIPTION\n       See the HEALERS reproduction notes.\n")
		c.Man[f.Name] = b.String()
	}
}

// buildObject serializes the dynamic symbol table.
func (c *Corpus) buildObject(lib *clib.Library) {
	var syms []elfsim.Symbol
	value := uint64(0x1000)
	for _, name := range lib.Names() {
		f, _ := lib.Lookup(name)
		syms = append(syms, elfsim.Symbol{
			Name:    f.Name,
			Version: f.Version,
			Binding: elfsim.BindGlobal,
			Value:   value,
		})
		value += 0x40
	}
	c.Object = elfsim.Build(Soname, syms)
}

package corpus

import (
	"strings"
	"testing"

	"healers/internal/clib"
	"healers/internal/elfsim"
)

func build(t *testing.T) (*clib.Library, *Corpus) {
	t.Helper()
	lib := clib.New()
	return lib, Build(lib)
}

func TestObjectParses(t *testing.T) {
	lib, c := build(t)
	img, err := elfsim.Parse(c.Object)
	if err != nil {
		t.Fatal(err)
	}
	if img.Soname != Soname {
		t.Errorf("soname = %q", img.Soname)
	}
	if len(img.Symbols) != len(lib.Names()) {
		t.Errorf("symbols = %d, want %d", len(img.Symbols), len(lib.Names()))
	}
	for _, s := range img.Symbols {
		if s.Version != clib.Version {
			t.Errorf("%s version = %q", s.Name, s.Version)
		}
	}
}

func TestEveryDeclaredFunctionInSomeHeader(t *testing.T) {
	lib, c := build(t)
	for _, name := range lib.Names() {
		f, _ := lib.Lookup(name)
		if f.Proto == "" || f.Header == "" {
			continue // deliberately undeclared
		}
		src, ok := c.Headers[f.Header]
		if !ok {
			t.Errorf("%s: header %s missing", name, f.Header)
			continue
		}
		if !strings.Contains(src, f.Proto) {
			t.Errorf("%s: prototype not in %s", name, f.Header)
		}
	}
}

func TestManPageDefectRates(t *testing.T) {
	lib, c := build(t)
	total := len(lib.Names())
	man := len(c.Man)
	cov := float64(man) / float64(total)
	if cov < 0.48 || cov > 0.55 {
		t.Errorf("man coverage = %.3f, want ~0.511", cov)
	}
	noHdr, wrongHdr := 0, 0
	for name := range c.Man {
		if noHeaderManPages[name] {
			noHdr++
		}
		if _, ok := wrongManHeaders[name]; ok {
			wrongHdr++
		}
	}
	if noHdr != len(noHeaderManPages) {
		t.Errorf("no-header pages = %d", noHdr)
	}
	if wrongHdr != len(wrongManHeaders) {
		t.Errorf("wrong-header pages = %d", wrongHdr)
	}
	// Internal functions never have man pages.
	for _, f := range lib.Internal() {
		if _, ok := c.Man[f.Name]; ok {
			t.Errorf("internal %s has a man page", f.Name)
		}
	}
}

func TestManPagesQuoteTheProto(t *testing.T) {
	lib, c := build(t)
	for name, page := range c.Man {
		f, ok := lib.Lookup(name)
		if !ok {
			t.Errorf("man page for unknown function %s", name)
			continue
		}
		if !strings.Contains(page, f.Proto) {
			t.Errorf("%s man page missing prototype", name)
		}
		if !strings.Contains(page, "SYNOPSIS") {
			t.Errorf("%s man page missing SYNOPSIS", name)
		}
	}
}

func TestDuplicateDeclarations(t *testing.T) {
	// The engineered multiple-definition phenomenon: some prototypes
	// appear in a second header too.
	_, c := build(t)
	for fn, extra := range extraHeaderDecls {
		src, ok := c.Headers[extra]
		if !ok {
			t.Errorf("extra header %s missing", extra)
			continue
		}
		if !strings.Contains(src, fn+"(") {
			t.Errorf("%s not duplicated into %s", fn, extra)
		}
	}
}

func TestHeaderGuardsAndIncludes(t *testing.T) {
	_, c := build(t)
	for _, h := range []string{"string.h", "stdio.h", "time.h", "dirent.h", "termios.h"} {
		src, ok := c.Headers[h]
		if !ok {
			t.Fatalf("%s missing", h)
		}
		if !strings.Contains(src, "#ifndef") {
			t.Errorf("%s has no include guard", h)
		}
		if !strings.Contains(src, "#include") {
			t.Errorf("%s includes nothing", h)
		}
	}
	if _, ok := c.Headers["sys/dir.h"]; ok {
		t.Error("sys/dir.h exists — it is supposed to be a wrong-man-page target")
	}
}

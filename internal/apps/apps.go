// Package apps implements the four utility-program workloads of the
// paper's Table 2: tar, gzip, gcc and ps2pdf. The real binaries are
// replaced by synthetic drivers that reproduce each program's
// *library-call profile* — how many wrapped calls it makes per second
// and what fraction of its execution lives inside the wrapped library —
// because those two variables are what Table 2's overhead numbers are a
// function of. gzip barely touches the library (compression dominates);
// gcc hammers it with tiny string and allocation calls; tar and ps2pdf
// sit in between.
package apps

import (
	"fmt"

	"healers/internal/cmem"
	"healers/internal/csim"
)

// Caller dispatches library calls (the bare library or a wrapper).
type Caller interface {
	Call(p *csim.Process, name string, args ...uint64) uint64
}

// Profile is one application workload.
type Profile struct {
	Name string
	// Paper holds the Table 2 reference values for reports.
	Paper PaperRow
	// Setup populates the filesystem fixture.
	Setup func(fs *csim.FS)
	// Run executes the workload, making library calls through c.
	Run func(p *csim.Process, c Caller)
}

// PaperRow is the Table 2 row as published.
type PaperRow struct {
	WrappedPerSec float64
	LibShare      float64 // fraction of execution time in the library
	CheckOverhead float64
	ExecOverhead  float64
}

// sink defeats dead-code elimination of the compute loops.
var sink uint64

// compute burns deterministic application-side CPU (the tar checksum,
// the gzip compressor, the compiler's own work).
func compute(units int) {
	acc := sink
	for i := 0; i < units*64; i++ {
		acc = acc*1099511628211 + uint64(i)
	}
	sink = acc
}

// helpers for building argument values in simulated memory

func mkCString(p *csim.Process, s string) cmem.Addr {
	a, err := p.Mem.MmapRegion(len(s)+1, cmem.ProtRW)
	if err != nil {
		return 0
	}
	p.Mem.WriteCString(a, s)
	return a
}

func mkBuffer(p *csim.Process, c Caller, size int) uint64 {
	return c.Call(p, "malloc", uint64(size))
}

// Tar models archiving a directory: directory walking, per-file reads,
// header string formatting, archive writes. Library share ~1%, a few
// thousand wrapped calls per second.
func Tar() *Profile {
	const files = 24
	return &Profile{
		Name: "tar",
		Paper: PaperRow{
			WrappedPerSec: 3545, LibShare: 0.0105,
			CheckOverhead: 0.0016, ExecOverhead: 0.0314,
		},
		Setup: func(fs *csim.FS) {
			payload := make([]byte, 2048)
			for i := range payload {
				payload[i] = byte('a' + i%26)
			}
			for i := 0; i < files; i++ {
				fs.Create(fmt.Sprintf("/src/file%02d.txt", i), payload)
			}
		},
		Run: func(p *csim.Process, c Caller) {
			dir := mkCString(p, "/src")
			archive := mkCString(p, "/out.tar")
			mode := mkCString(p, "w")
			rmode := mkCString(p, "r")
			buf := mkBuffer(p, c, 512)
			header := mkBuffer(p, c, 128)

			out := c.Call(p, "fopen", uint64(archive), uint64(mode))
			dp := c.Call(p, "opendir", uint64(dir))
			for {
				de := c.Call(p, "readdir", dp)
				if de == 0 {
					break
				}
				nameAddr := de + csim.DirentOffName
				// Format a header: copy the name, measure it.
				c.Call(p, "strcpy", header, uint64(nameAddr))
				c.Call(p, "strlen", header)
				c.Call(p, "fwrite", header, 1, 128, out)

				path := mkCString(p, "/src/")
				c.Call(p, "strcat", uint64(path)+0, uint64(nameAddr))
				in := c.Call(p, "fopen", uint64(path), uint64(rmode))
				if in == 0 {
					continue
				}
				for {
					n := c.Call(p, "fread", buf, 1, 512, in)
					if n == 0 {
						break
					}
					c.Call(p, "fwrite", buf, 1, n, out)
					compute(40000) // checksum + blocking factor bookkeeping
				}
				c.Call(p, "fclose", in)
			}
			c.Call(p, "closedir", dp)
			c.Call(p, "fclose", out)
		},
	}
}

// Gzip models compressing one file: a handful of library calls around a
// compute-dominated compression loop. Library share ~0.01%, tens of
// wrapped calls per second.
func Gzip() *Profile {
	return &Profile{
		Name: "gzip",
		Paper: PaperRow{
			WrappedPerSec: 43, LibShare: 0.0001,
			CheckOverhead: 0.000003, ExecOverhead: 0.0112,
		},
		Setup: func(fs *csim.FS) {
			data := make([]byte, 8192)
			for i := range data {
				data[i] = byte(i * 31)
			}
			fs.Create("/in.dat", data)
		},
		Run: func(p *csim.Process, c Caller) {
			path := mkCString(p, "/in.dat")
			outPath := mkCString(p, "/in.dat.gz")
			rmode := mkCString(p, "r")
			wmode := mkCString(p, "w")
			buf := mkBuffer(p, c, 4096)

			in := c.Call(p, "fopen", uint64(path), uint64(rmode))
			out := c.Call(p, "fopen", uint64(outPath), uint64(wmode))
			for block := 0; block < 2; block++ {
				n := c.Call(p, "fread", buf, 1, 4096, in)
				if n == 0 {
					break
				}
				// The compressor: LZ window scans dominate everything.
				compute(2_000_000)
				c.Call(p, "fwrite", buf, 1, n/2, out)
			}
			c.Call(p, "fclose", in)
			c.Call(p, "fclose", out)
		},
	}
}

// Gcc models a compiler front end: floods of tiny identifier-string and
// allocation calls with a little parsing compute between them. Library
// share ~10%, hundreds of thousands of wrapped calls per second.
func Gcc() *Profile {
	const tokens = 4000
	return &Profile{
		Name: "gcc",
		Paper: PaperRow{
			WrappedPerSec: 388998, LibShare: 0.1020,
			CheckOverhead: 0.0172, ExecOverhead: 0.161,
		},
		Setup: func(fs *csim.FS) {
			fs.Create("/main.c", []byte("int main(void) { return 0; }\n"))
		},
		Run: func(p *csim.Process, c Caller) {
			// The symbol table: identifiers are strduped, compared,
			// hashed, and freed, as a compiler front end does.
			ident := mkCString(p, "identifier_name")
			keyword := mkCString(p, "register")
			for i := 0; i < tokens; i++ {
				dup := c.Call(p, "strdup", uint64(ident))
				c.Call(p, "strlen", dup)
				c.Call(p, "strcmp", dup, uint64(keyword))
				sym := c.Call(p, "malloc", 32)
				c.Call(p, "strncpy", sym, dup, 32)
				compute(160) // parse actions between tokens
				c.Call(p, "free", sym)
				c.Call(p, "free", dup)
			}
		},
	}
}

// Ps2pdf models a PostScript interpreter: character-at-a-time stream
// I/O with interpretation compute per character. Library share ~8%.
func Ps2pdf() *Profile {
	return &Profile{
		Name: "ps2pdf",
		Paper: PaperRow{
			WrappedPerSec: 378659, LibShare: 0.0796,
			CheckOverhead: 0.0188, ExecOverhead: 0.0567,
		},
		Setup: func(fs *csim.FS) {
			const ops = "0123456789 moveto lineto stroke showpage\n"
			doc := make([]byte, 6000)
			for i := range doc {
				doc[i] = ops[i%len(ops)]
			}
			fs.Create("/doc.ps", doc)
		},
		Run: func(p *csim.Process, c Caller) {
			path := mkCString(p, "/doc.ps")
			outPath := mkCString(p, "/doc.pdf")
			rmode := mkCString(p, "r")
			wmode := mkCString(p, "w")
			in := c.Call(p, "fopen", uint64(path), uint64(rmode))
			out := c.Call(p, "fopen", uint64(outPath), uint64(wmode))
			for {
				ch := c.Call(p, "fgetc", in)
				if int64(ch) < 0 {
					break
				}
				compute(90) // interpret the token stream
				c.Call(p, "fputc", ch, out)
			}
			c.Call(p, "fclose", in)
			c.Call(p, "fclose", out)
		},
	}
}

// All returns the Table 2 workloads in paper order.
func All() []*Profile {
	return []*Profile{Tar(), Gzip(), Gcc(), Ps2pdf()}
}

//go:build race

package apps

// raceEnabled reports whether the race detector instruments this build;
// wall-clock assertions are skipped under its ~10x slowdown.
const raceEnabled = true

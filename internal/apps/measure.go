package apps

import (
	"fmt"
	"strings"
	"time"

	"healers/internal/clib"
	"healers/internal/csim"
	"healers/internal/decl"
	"healers/internal/wrapper"
)

// timingCaller measures the time spent inside library calls — the
// paper's "measurement wrapper" that determines call frequency and the
// percentage of execution time spent in the wrapped C library.
type timingCaller struct {
	inner Caller
	calls int
	spent time.Duration
}

func (t *timingCaller) Call(p *csim.Process, name string, args ...uint64) uint64 {
	t.calls++
	start := time.Now()
	ret := t.inner.Call(p, name, args...)
	t.spent += time.Since(start)
	return ret
}

// Measurement is one application's Table 2 row as measured.
type Measurement struct {
	Name          string
	Calls         int
	WrappedPerSec float64
	LibShare      float64 // fraction of unwrapped execution inside the library
	CheckOverhead float64 // checking time / wrapped execution time
	ExecOverhead  float64 // (wrapped - unwrapped) / unwrapped
	Paper         PaperRow
}

// Measure runs the profile unwrapped and wrapped and derives the
// Table 2 quantities.
func Measure(lib *clib.Library, decls *decl.DeclSet, profile *Profile) Measurement {
	run := func(wrapped bool) (total, inLib time.Duration, calls int) {
		fs := csim.NewFS()
		if profile.Setup != nil {
			profile.Setup(fs)
		}
		p := csim.NewProcess(fs)
		p.SetStepBudget(1 << 31)
		var base Caller = lib
		if wrapped {
			base = wrapper.Attach(p, lib, decls, wrapper.DefaultOptions())
		}
		tc := &timingCaller{inner: base}
		start := time.Now()
		profile.Run(p, tc)
		return time.Since(start), tc.spent, tc.calls
	}

	// Three runs each, keeping the fastest, to damp scheduler and
	// frequency-scaling jitter — compute-dominated profiles like gzip
	// make so few calls that noise would otherwise swamp the overhead.
	best := func(wrapped bool) (time.Duration, time.Duration, int) {
		bt, bl, bc := run(wrapped)
		for i := 0; i < 2; i++ {
			t, l, c := run(wrapped)
			if t < bt {
				bt, bl, bc = t, l, c
			}
		}
		return bt, bl, bc
	}
	plainTotal, plainLib, _ := best(false)
	wrapTotal, wrapLib, calls := best(true)

	m := Measurement{
		Name:  profile.Name,
		Calls: calls,
		Paper: profile.Paper,
	}
	if wrapTotal > 0 {
		m.WrappedPerSec = float64(calls) / wrapTotal.Seconds()
		m.CheckOverhead = float64(wrapLib-plainLib) / float64(wrapTotal)
		if m.CheckOverhead < 0 {
			m.CheckOverhead = 0
		}
	}
	if plainTotal > 0 {
		m.LibShare = float64(plainLib) / float64(plainTotal)
		m.ExecOverhead = float64(wrapTotal-plainTotal) / float64(plainTotal)
		if m.ExecOverhead < 0 {
			m.ExecOverhead = 0
		}
	}
	return m
}

// MeasureAll runs every Table 2 workload.
func MeasureAll(lib *clib.Library, decls *decl.DeclSet) []Measurement {
	var out []Measurement
	for _, profile := range All() {
		out = append(out, Measure(lib, decls, profile))
	}
	return out
}

// FormatTable2 renders the measurements next to the paper's numbers.
func FormatTable2(ms []Measurement) string {
	var b strings.Builder
	b.WriteString("Table 2 — execution overhead of four utility programs (measured | paper)\n")
	fmt.Fprintf(&b, "%-22s", "Applications")
	for _, m := range ms {
		fmt.Fprintf(&b, "%18s", m.Name)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-22s", "#wrapped func/sec")
	for _, m := range ms {
		fmt.Fprintf(&b, "%10.0f |%5.0f", m.WrappedPerSec, m.Paper.WrappedPerSec)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-22s", "time in library")
	for _, m := range ms {
		fmt.Fprintf(&b, "%9.2f%% |%4.2f%%", 100*m.LibShare, 100*m.Paper.LibShare)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-22s", "checking overhead")
	for _, m := range ms {
		fmt.Fprintf(&b, "%9.2f%% |%4.2f%%", 100*m.CheckOverhead, 100*m.Paper.CheckOverhead)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-22s", "execution overhead")
	for _, m := range ms {
		fmt.Fprintf(&b, "%9.2f%% |%4.2f%%", 100*m.ExecOverhead, 100*m.Paper.ExecOverhead)
	}
	b.WriteString("\n")
	return b.String()
}

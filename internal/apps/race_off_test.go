//go:build !race

package apps

const raceEnabled = false

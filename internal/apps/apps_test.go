package apps

import (
	"testing"

	"healers/internal/clib"
	"healers/internal/corpus"
	"healers/internal/csim"
	"healers/internal/decl"
	"healers/internal/extract"
	"healers/internal/injector"
	"healers/internal/wrapper"
)

var (
	cachedLib   *clib.Library
	cachedDecls *decl.DeclSet
)

func setup(t *testing.T) (*clib.Library, *decl.DeclSet) {
	t.Helper()
	if cachedLib != nil {
		return cachedLib, cachedDecls
	}
	lib := clib.New()
	ext, err := extract.Run(corpus.Build(lib))
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := injector.New(lib, injector.DefaultConfig()).InjectAll(ext, lib.CrashProne86())
	if err != nil {
		t.Fatal(err)
	}
	cachedLib, cachedDecls = lib, decl.ApplySemiAutoEdits(campaign.Decls())
	return cachedLib, cachedDecls
}

// runApp executes a profile under the given call path and returns the
// outcome plus final filesystem.
func runApp(t *testing.T, profile *Profile, lib *clib.Library, decls *decl.DeclSet) (*csim.Process, csim.Outcome) {
	t.Helper()
	fs := csim.NewFS()
	if profile.Setup != nil {
		profile.Setup(fs)
	}
	p := csim.NewProcess(fs)
	p.SetStepBudget(1 << 31)
	var c Caller = lib
	if decls != nil {
		c = wrapper.Attach(p, lib, decls, wrapper.DefaultOptions())
	}
	out := p.Run(func() uint64 {
		profile.Run(p, c)
		return 0
	})
	return p, out
}

func TestAppsRunCleanUnwrapped(t *testing.T) {
	lib, _ := setup(t)
	for _, profile := range All() {
		t.Run(profile.Name, func(t *testing.T) {
			p, out := runApp(t, profile, lib, nil)
			if out.Kind != csim.OutcomeReturn {
				t.Fatalf("%s crashed unwrapped: %v", profile.Name, out)
			}
			_ = p
		})
	}
}

func TestAppsProduceSameOutputWrapped(t *testing.T) {
	// The wrapper must be transparent for correct programs: the files
	// each application produces must be identical with and without it.
	lib, decls := setup(t)
	outputs := map[string]string{
		"tar":    "/out.tar",
		"gzip":   "/in.dat.gz",
		"ps2pdf": "/doc.pdf",
	}
	for _, profile := range All() {
		t.Run(profile.Name, func(t *testing.T) {
			pPlain, outPlain := runApp(t, profile, lib, nil)
			pWrap, outWrap := runApp(t, profile, lib, decls)
			if outPlain.Kind != csim.OutcomeReturn || outWrap.Kind != csim.OutcomeReturn {
				t.Fatalf("outcomes: plain=%v wrapped=%v", outPlain, outWrap)
			}
			path, ok := outputs[profile.Name]
			if !ok {
				return // gcc produces no file artifact
			}
			a, okA := pPlain.FS.Lookup(path)
			b, okB := pWrap.FS.Lookup(path)
			if !okA || !okB {
				t.Fatalf("output %s missing: plain=%v wrapped=%v", path, okA, okB)
			}
			if string(a.Data) != string(b.Data) {
				t.Errorf("%s differs between plain (%d bytes) and wrapped (%d bytes)",
					path, len(a.Data), len(b.Data))
			}
			if len(a.Data) == 0 {
				t.Errorf("%s is empty", path)
			}
		})
	}
}

func TestWrapperDoesNotRejectValidAppCalls(t *testing.T) {
	lib, decls := setup(t)
	for _, profile := range All() {
		t.Run(profile.Name, func(t *testing.T) {
			fs := csim.NewFS()
			if profile.Setup != nil {
				profile.Setup(fs)
			}
			p := csim.NewProcess(fs)
			p.SetStepBudget(1 << 31)
			ip := wrapper.Attach(p, lib, decls, wrapper.DefaultOptions())
			out := p.Run(func() uint64 {
				profile.Run(p, ip)
				return 0
			})
			if out.Kind != csim.OutcomeReturn {
				t.Fatalf("wrapped %s: %v", profile.Name, out)
			}
			if rej := ip.Stats().Rejected; rej != 0 {
				t.Errorf("wrapper rejected %d valid calls: %+v", rej, ip.Stats().Violations)
			}
		})
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	if raceEnabled {
		t.Skip("wall-clock orderings are not meaningful under the race detector's slowdown")
	}
	lib, decls := setup(t)
	ms := MeasureAll(lib, decls)
	t.Logf("\n%s", FormatTable2(ms))
	byName := map[string]Measurement{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	gzip, gcc, tar, ps := byName["gzip"], byName["gcc"], byName["tar"], byName["ps2pdf"]

	// Orderings the paper's Table 2 exhibits.
	if !(gzip.WrappedPerSec < tar.WrappedPerSec) {
		t.Errorf("gzip calls/sec (%.0f) should be lowest (tar %.0f)", gzip.WrappedPerSec, tar.WrappedPerSec)
	}
	if !(gcc.WrappedPerSec > tar.WrappedPerSec && ps.WrappedPerSec > tar.WrappedPerSec) {
		t.Errorf("gcc/ps2pdf calls/sec should exceed tar: gcc=%.0f ps=%.0f tar=%.0f",
			gcc.WrappedPerSec, ps.WrappedPerSec, tar.WrappedPerSec)
	}
	if !(gzip.LibShare < tar.LibShare && tar.LibShare < gcc.LibShare) {
		t.Errorf("library share ordering wrong: gzip=%.4f tar=%.4f gcc=%.4f",
			gzip.LibShare, tar.LibShare, gcc.LibShare)
	}
	// Both overheads are fractions of wall-clock time; under parallel
	// test load either can collapse to ~0, so the ordering claim only
	// holds above a small noise floor.
	const noise = 0.005
	if !(gzip.CheckOverhead <= tar.CheckOverhead+noise) {
		t.Errorf("gzip checking overhead (%.4f) should be minimal (tar %.4f)",
			gzip.CheckOverhead, tar.CheckOverhead)
	}
	if !(gcc.CheckOverhead > tar.CheckOverhead) {
		t.Errorf("gcc checking overhead (%.4f) should exceed tar (%.4f)",
			gcc.CheckOverhead, tar.CheckOverhead)
	}
	if gzip.ExecOverhead > 0.05 {
		t.Errorf("gzip execution overhead = %.2f%%, should be small", 100*gzip.ExecOverhead)
	}
}

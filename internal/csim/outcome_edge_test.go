package csim

import (
	"testing"

	"healers/internal/cmem"
)

// Edge cases of the outcome classifier: the exact hang boundary, faults
// at the first byte past a mapping and on an explicit guard page, and
// signals raised while another signal is already unwinding. These pin
// the semantics the injector's adaptive loop depends on — a hang
// misclassified as a return (or a boundary fault attributed to the
// wrong address) silently corrupts robust type inference.

func TestStepBudgetBoundary(t *testing.T) {
	const budget = 100
	cases := []struct {
		name  string
		steps int
		want  OutcomeKind
	}{
		{"one under budget", budget - 1, OutcomeReturn},
		{"exactly at budget", budget, OutcomeReturn},
		{"one past budget", budget + 1, OutcomeHang},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := NewProcess(nil)
			p.SetStepBudget(budget)
			out := p.Run(func() uint64 {
				for i := 0; i < c.steps; i++ {
					p.Step()
				}
				return 7
			})
			if out.Kind != c.want {
				t.Fatalf("%d steps under budget %d: %s, want %s", c.steps, budget, out.Kind, c.want)
			}
			switch c.want {
			case OutcomeReturn:
				if out.Ret != 7 || out.Steps != c.steps {
					t.Errorf("ret=%d steps=%d, want ret=7 steps=%d", out.Ret, out.Steps, c.steps)
				}
			case OutcomeHang:
				// The hang is detected on the first over-budget step.
				if out.Steps != budget+1 {
					t.Errorf("hang detected at step %d, want %d", out.Steps, budget+1)
				}
			}
		})
	}
}

func TestGuardPageBoundaryFaults(t *testing.T) {
	const base = cmem.Addr(0x5000_0000)
	cases := []struct {
		name       string
		prot       cmem.Prot // protection of the page after the mapped one
		access     func(p *Process, boundary cmem.Addr)
		wantAccess cmem.Access
		wantMapped bool
	}{
		{
			"read one past mapping",
			0xff, // sentinel: leave the page unmapped
			func(p *Process, b cmem.Addr) { p.LoadByte(b) },
			cmem.AccessRead, false,
		},
		{
			"write one past mapping",
			0xff,
			func(p *Process, b cmem.Addr) { p.StoreByte(b, 1) },
			cmem.AccessWrite, false,
		},
		{
			"read a guard page",
			cmem.ProtNone,
			func(p *Process, b cmem.Addr) { p.LoadByte(b) },
			cmem.AccessRead, true,
		},
		{
			"write a read-only page",
			cmem.ProtRead,
			func(p *Process, b cmem.Addr) { p.StoreByte(b, 1) },
			cmem.AccessWrite, true,
		},
		{
			"straddling read faults at the boundary",
			0xff,
			func(p *Process, b cmem.Addr) { p.Load(b-4, 8) },
			cmem.AccessRead, false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := NewProcess(nil)
			p.Mem.Map(base, cmem.PageSize, cmem.ProtRW)
			if c.prot != 0xff {
				p.Mem.Map(base+cmem.PageSize, cmem.PageSize, c.prot)
			}
			boundary := base + cmem.PageSize

			// The whole mapped page is usable right up to the boundary.
			out := p.Run(func() uint64 {
				p.StoreByte(boundary-1, 0xab)
				return uint64(p.LoadByte(boundary - 1))
			})
			if out.Kind != OutcomeReturn || out.Ret != 0xab {
				t.Fatalf("last in-bounds byte: %s ret=%#x", out.Kind, out.Ret)
			}

			out = p.Run(func() uint64 {
				c.access(p, boundary)
				return 0
			})
			if out.Kind != OutcomeSegfault {
				t.Fatalf("boundary access: %s, want segfault", out.Kind)
			}
			if out.Fault == nil {
				t.Fatal("segfault outcome carries no fault")
			}
			if out.Fault.Addr != boundary {
				t.Errorf("fault at %#x, want boundary %#x", uint64(out.Fault.Addr), uint64(boundary))
			}
			if out.Fault.Access != c.wantAccess || out.Fault.Mapped != c.wantMapped {
				t.Errorf("fault %v mapped=%t, want %v mapped=%t",
					out.Fault.Access, out.Fault.Mapped, c.wantAccess, c.wantMapped)
			}
		})
	}
}

// TestSignalDuringSignal pins what happens when a deferred cleanup
// raises while another signal is unwinding: the later signal wins, as
// with a real SIGABRT delivered inside a SIGSEGV handler. The sandbox
// must classify the call by the signal that reached it, not crash the
// test harness itself.
func TestSignalDuringSignal(t *testing.T) {
	const unmapped = cmem.Addr(0x6000_0000)
	cases := []struct {
		name string
		fn   func(p *Process) func() uint64
		want OutcomeKind
	}{
		{
			"abort during abort",
			func(p *Process) func() uint64 {
				return func() uint64 {
					defer p.Abort()
					p.Abort()
					return 0
				}
			},
			OutcomeAbort,
		},
		{
			"abort during segfault",
			func(p *Process) func() uint64 {
				return func() uint64 {
					defer p.Abort()
					p.LoadByte(unmapped)
					return 0
				}
			},
			OutcomeAbort,
		},
		{
			"segfault during abort",
			func(p *Process) func() uint64 {
				return func() uint64 {
					defer p.LoadByte(unmapped)
					p.Abort()
					return 0
				}
			},
			OutcomeSegfault,
		},
		{
			"hang during abort",
			func(p *Process) func() uint64 {
				return func() uint64 {
					defer func() {
						for {
							p.Step()
						}
					}()
					p.Abort()
					return 0
				}
			},
			OutcomeHang,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := NewProcess(nil)
			p.SetStepBudget(1000)
			out := p.Run(c.fn(p))
			if out.Kind != c.want {
				t.Fatalf("classified %s, want %s", out.Kind, c.want)
			}
			// The process must stay usable for the next forked call.
			out = p.Run(func() uint64 { return 1 })
			if out.Kind != OutcomeReturn || out.Ret != 1 {
				t.Errorf("process unusable after nested signal: %s", out.Kind)
			}
		})
	}
}

package csim

import (
	"path"
	"sort"
	"sync/atomic"
)

// VFile is an in-memory file. Files are shared between processes like
// inodes on a real system.
type VFile struct {
	Data  []byte
	Mode  uint32 // permission bits, 0644-style
	IsDir bool
	Ino   uint64

	// frozen marks a file shared copy-on-write across forked
	// filesystems. A frozen file's Data must never be mutated in place;
	// every mutation path privatizes first (unshareFile). The flag is
	// atomic because concurrent template forks freeze the same inode
	// from several goroutines.
	frozen atomic.Bool
}

// Frozen reports whether the file is currently shared copy-on-write
// between forked filesystems (and therefore must not be mutated in
// place). Tests use it to audit the privatize-on-write funnel.
func (f *VFile) Frozen() bool { return f.frozen.Load() }

// unfrozenCopy returns a private, mutable copy of f.
func (f *VFile) unfrozenCopy() *VFile {
	return &VFile{
		Data:  append([]byte(nil), f.Data...),
		Mode:  f.Mode,
		IsDir: f.IsDir,
		Ino:   f.Ino,
	}
}

// FS is an in-memory filesystem shared by simulated processes.
type FS struct {
	files   map[string]*VFile
	nextIno uint64
}

// NewFS returns a filesystem containing only the root directory.
func NewFS() *FS {
	fs := &FS{files: make(map[string]*VFile), nextIno: 2}
	fs.files["/"] = &VFile{IsDir: true, Mode: 0o755, Ino: 1}
	return fs
}

// Create adds (or truncates) a regular file with the given contents.
func (fs *FS) Create(name string, data []byte) *VFile {
	name = path.Clean(name)
	fs.mkParents(name)
	f := &VFile{Data: append([]byte(nil), data...), Mode: 0o644, Ino: fs.nextIno}
	fs.nextIno++
	fs.files[name] = f
	return f
}

// Mkdir adds a directory (and any missing parents).
func (fs *FS) Mkdir(name string) *VFile {
	name = path.Clean(name)
	if f, ok := fs.files[name]; ok && f.IsDir {
		return f
	}
	fs.mkParents(name)
	f := &VFile{IsDir: true, Mode: 0o755, Ino: fs.nextIno}
	fs.nextIno++
	fs.files[name] = f
	return f
}

func (fs *FS) mkParents(name string) {
	dir := path.Dir(name)
	if dir == name || dir == "." {
		return
	}
	if f, ok := fs.files[dir]; ok && f.IsDir {
		return
	}
	fs.Mkdir(dir)
}

// Clone forks the filesystem copy-on-write: the name table is copied
// (it is small and mutated by Create/Mkdir/Remove without any funnel),
// but the files themselves are shared by pointer and frozen. A frozen
// file is privatized the moment either side needs to mutate it — at
// writable open, or at Fork time for descriptors the child inherits
// open for writing — so a test that truncates or unlinks a fixture
// still cannot pollute sibling tests, while the historical eager clone
// (which deep-copied every fixture byte on every fork, the dominant
// fork cost) is gone. Clone only reads fs besides the atomic freeze
// bits, so one filesystem may be cloned concurrently from several
// goroutines.
func (fs *FS) Clone() *FS {
	c := &FS{files: make(map[string]*VFile, len(fs.files)), nextIno: fs.nextIno}
	for name, f := range fs.files {
		f.frozen.Store(true)
		c.files[name] = f
	}
	return c
}

// Lookup finds a file by name.
func (fs *FS) Lookup(name string) (*VFile, bool) {
	f, ok := fs.files[path.Clean(name)]
	return f, ok
}

// Remove deletes a file by name.
func (fs *FS) Remove(name string) bool {
	name = path.Clean(name)
	if _, ok := fs.files[name]; !ok {
		return false
	}
	delete(fs.files, name)
	return true
}

// List returns the sorted child names of a directory.
func (fs *FS) List(dir string) []string {
	dir = path.Clean(dir)
	var out []string
	for name := range fs.files {
		if name == dir {
			continue
		}
		if path.Dir(name) == dir {
			out = append(out, path.Base(name))
		}
	}
	sort.Strings(out)
	return out
}

// Open-file access modes.
type AccessMode uint8

// Access modes for open descriptors.
const (
	ReadOnly AccessMode = iota + 1
	WriteOnly
	ReadWrite
)

// Readable reports whether the mode permits reading.
func (m AccessMode) Readable() bool { return m == ReadOnly || m == ReadWrite }

// Writable reports whether the mode permits writing.
func (m AccessMode) Writable() bool { return m == WriteOnly || m == ReadWrite }

// OpenFD is an open-file description, shared across forked descriptor
// tables like a real kernel's file table entry.
type OpenFD struct {
	File   *VFile
	Name   string
	Mode   AccessMode
	Pos    int
	Append bool

	// Directory streams.
	IsDir   bool
	Entries []string
	DirPos  int
}

// unshareFile replaces a frozen (fork-shared) file with a private
// mutable copy throughout this process: the filesystem name table and
// every open descriptor referencing the shared inode are re-pointed,
// so all of this process's views of the file stay coherent while
// sibling forks keep the pre-fork bytes. This is the copy-on-write
// privatize funnel every file mutation path goes through.
func (p *Process) unshareFile(f *VFile) *VFile {
	if f == nil || !f.frozen.Load() {
		return f
	}
	nf := f.unfrozenCopy()
	for name, g := range p.FS.files {
		if g == f {
			p.FS.files[name] = nf
		}
	}
	for _, of := range p.fds {
		if of.File == f {
			of.File = nf
		}
	}
	return nf
}

// PrivatizeForWrite prepares an open description for an in-place Data
// mutation: a file still fork-shared (frozen) is replaced by a private
// copy throughout the process first. The stdio/unistd writers call it
// immediately before every mutation, which is what lets Fork hand a
// child writable descriptors over still-shared file bytes — a
// checkpoint child that never writes its inherited FILE never pays for
// a copy.
func (p *Process) PrivatizeForWrite(of *OpenFD) {
	if of == nil || of.File == nil || !of.File.frozen.Load() {
		return
	}
	of.File = p.unshareFile(of.File)
}

// OpenFile opens name with the given mode, allocating a descriptor.
// It returns -1 and sets errno on failure. A writable open of a
// fork-shared file does NOT copy it: privatization is deferred to the
// first in-place mutation (PrivatizeForWrite), so the common campaign
// shape — fopen a fixture "r+" and only ever read it — shares the
// fixture bytes across every fork.
func (p *Process) OpenFile(name string, mode AccessMode, create bool) int {
	f, ok := p.FS.Lookup(name)
	if !ok {
		if !create {
			p.SetErrno(ENOENT)
			return -1
		}
		f = p.FS.Create(name, nil)
	}
	if f.IsDir && mode.Writable() {
		p.SetErrno(EISDIR)
		return -1
	}
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = &OpenFD{File: f, Name: name, Mode: mode}
	return fd
}

// OpenDir opens a directory stream descriptor.
func (p *Process) OpenDir(name string) int {
	f, ok := p.FS.Lookup(name)
	if !ok {
		p.SetErrno(ENOENT)
		return -1
	}
	if !f.IsDir {
		p.SetErrno(ENOTDIR)
		return -1
	}
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = &OpenFD{File: f, Name: name, Mode: ReadOnly, IsDir: true, Entries: p.FS.List(name)}
	return fd
}

// FD resolves a descriptor, returning nil if it is not open.
func (p *Process) FD(fd int) *OpenFD {
	if fd < 0 {
		return nil
	}
	return p.fds[fd]
}

// CloseFD closes a descriptor. Returns false (EBADF) if not open.
func (p *Process) CloseFD(fd int) bool {
	if _, ok := p.fds[fd]; !ok {
		p.SetErrno(EBADF)
		return false
	}
	delete(p.fds, fd)
	return true
}

// OpenFDCount returns the number of open descriptors (tests use this to
// detect descriptor leaks in wrappers).
func (p *Process) OpenFDCount() int { return len(p.fds) }

// DupFD installs an additional descriptor sharing the open-file
// description of and returns its number.
func (p *Process) DupFD(of *OpenFD) int {
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = of
	return fd
}

package csim

import (
	"path"
	"sort"
)

// VFile is an in-memory file. Files are shared between processes like
// inodes on a real system.
type VFile struct {
	Data  []byte
	Mode  uint32 // permission bits, 0644-style
	IsDir bool
	Ino   uint64
}

// FS is an in-memory filesystem shared by simulated processes.
type FS struct {
	files   map[string]*VFile
	nextIno uint64
}

// NewFS returns a filesystem containing only the root directory.
func NewFS() *FS {
	fs := &FS{files: make(map[string]*VFile), nextIno: 2}
	fs.files["/"] = &VFile{IsDir: true, Mode: 0o755, Ino: 1}
	return fs
}

// Create adds (or truncates) a regular file with the given contents.
func (fs *FS) Create(name string, data []byte) *VFile {
	name = path.Clean(name)
	fs.mkParents(name)
	f := &VFile{Data: append([]byte(nil), data...), Mode: 0o644, Ino: fs.nextIno}
	fs.nextIno++
	fs.files[name] = f
	return f
}

// Mkdir adds a directory (and any missing parents).
func (fs *FS) Mkdir(name string) *VFile {
	name = path.Clean(name)
	if f, ok := fs.files[name]; ok && f.IsDir {
		return f
	}
	fs.mkParents(name)
	f := &VFile{IsDir: true, Mode: 0o755, Ino: fs.nextIno}
	fs.nextIno++
	fs.files[name] = f
	return f
}

func (fs *FS) mkParents(name string) {
	dir := path.Dir(name)
	if dir == name || dir == "." {
		return
	}
	if f, ok := fs.files[dir]; ok && f.IsDir {
		return
	}
	fs.Mkdir(dir)
}

// Clone deep-copies the filesystem. Fork gives each child its own
// clone so a test that truncates or unlinks a fixture cannot pollute
// sibling tests — the moral equivalent of each Ballista test program
// recreating its fixtures. Note that already-open descriptors keep
// referencing the pre-clone inodes (like POSIX shared open-file
// descriptions); templates fork with no descriptors open.
func (fs *FS) Clone() *FS {
	c := &FS{files: make(map[string]*VFile, len(fs.files)), nextIno: fs.nextIno}
	for name, f := range fs.files {
		cf := *f
		cf.Data = append([]byte(nil), f.Data...)
		c.files[name] = &cf
	}
	return c
}

// Lookup finds a file by name.
func (fs *FS) Lookup(name string) (*VFile, bool) {
	f, ok := fs.files[path.Clean(name)]
	return f, ok
}

// Remove deletes a file by name.
func (fs *FS) Remove(name string) bool {
	name = path.Clean(name)
	if _, ok := fs.files[name]; !ok {
		return false
	}
	delete(fs.files, name)
	return true
}

// List returns the sorted child names of a directory.
func (fs *FS) List(dir string) []string {
	dir = path.Clean(dir)
	var out []string
	for name := range fs.files {
		if name == dir {
			continue
		}
		if path.Dir(name) == dir {
			out = append(out, path.Base(name))
		}
	}
	sort.Strings(out)
	return out
}

// Open-file access modes.
type AccessMode uint8

// Access modes for open descriptors.
const (
	ReadOnly AccessMode = iota + 1
	WriteOnly
	ReadWrite
)

// Readable reports whether the mode permits reading.
func (m AccessMode) Readable() bool { return m == ReadOnly || m == ReadWrite }

// Writable reports whether the mode permits writing.
func (m AccessMode) Writable() bool { return m == WriteOnly || m == ReadWrite }

// OpenFD is an open-file description, shared across forked descriptor
// tables like a real kernel's file table entry.
type OpenFD struct {
	File   *VFile
	Name   string
	Mode   AccessMode
	Pos    int
	Append bool

	// Directory streams.
	IsDir   bool
	Entries []string
	DirPos  int
}

// OpenFile opens name with the given mode, allocating a descriptor.
// It returns -1 and sets errno on failure.
func (p *Process) OpenFile(name string, mode AccessMode, create bool) int {
	f, ok := p.FS.Lookup(name)
	if !ok {
		if !create {
			p.SetErrno(ENOENT)
			return -1
		}
		f = p.FS.Create(name, nil)
	}
	if f.IsDir && mode.Writable() {
		p.SetErrno(EISDIR)
		return -1
	}
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = &OpenFD{File: f, Name: name, Mode: mode}
	return fd
}

// OpenDir opens a directory stream descriptor.
func (p *Process) OpenDir(name string) int {
	f, ok := p.FS.Lookup(name)
	if !ok {
		p.SetErrno(ENOENT)
		return -1
	}
	if !f.IsDir {
		p.SetErrno(ENOTDIR)
		return -1
	}
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = &OpenFD{File: f, Name: name, Mode: ReadOnly, IsDir: true, Entries: p.FS.List(name)}
	return fd
}

// FD resolves a descriptor, returning nil if it is not open.
func (p *Process) FD(fd int) *OpenFD {
	if fd < 0 {
		return nil
	}
	return p.fds[fd]
}

// CloseFD closes a descriptor. Returns false (EBADF) if not open.
func (p *Process) CloseFD(fd int) bool {
	if _, ok := p.fds[fd]; !ok {
		p.SetErrno(EBADF)
		return false
	}
	delete(p.fds, fd)
	return true
}

// OpenFDCount returns the number of open descriptors (tests use this to
// detect descriptor leaks in wrappers).
func (p *Process) OpenFDCount() int { return len(p.fds) }

// DupFD installs an additional descriptor sharing the open-file
// description of and returns its number.
func (p *Process) DupFD(of *OpenFD) int {
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = of
	return fd
}

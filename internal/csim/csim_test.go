package csim

import (
	"strings"
	"testing"

	"healers/internal/cmem"
)

func TestRunReturn(t *testing.T) {
	p := NewProcess(nil)
	out := p.Run(func() uint64 { return 42 })
	if out.Kind != OutcomeReturn || out.Ret != 42 {
		t.Errorf("Run = %v, want return 42", out)
	}
	if out.Crashed() {
		t.Error("normal return reported as crash")
	}
}

func TestRunSegfault(t *testing.T) {
	p := NewProcess(nil)
	out := p.Run(func() uint64 {
		p.LoadByte(0xdead)
		return 0
	})
	if out.Kind != OutcomeSegfault {
		t.Fatalf("Run = %v, want segfault", out)
	}
	if out.Fault == nil || out.Fault.Addr != 0xdead {
		t.Errorf("fault = %v, want addr 0xdead", out.Fault)
	}
	if !out.Crashed() {
		t.Error("segfault not reported as crash")
	}
}

func TestRunHang(t *testing.T) {
	p := NewProcess(nil)
	p.SetStepBudget(100)
	out := p.Run(func() uint64 {
		for {
			p.Step()
		}
	})
	if out.Kind != OutcomeHang {
		t.Errorf("Run = %v, want hang", out)
	}
}

func TestRunAbort(t *testing.T) {
	p := NewProcess(nil)
	out := p.Run(func() uint64 {
		p.Abort()
		return 0
	})
	if out.Kind != OutcomeAbort {
		t.Errorf("Run = %v, want abort", out)
	}
}

func TestRunDoesNotSwallowBugs(t *testing.T) {
	p := NewProcess(nil)
	defer func() {
		if recover() == nil {
			t.Error("simulator bug panic was swallowed by Run")
		}
	}()
	p.Run(func() uint64 { panic("simulator bug") })
}

func TestErrnoTracking(t *testing.T) {
	p := NewProcess(nil)
	if p.ErrnoSet() {
		t.Error("fresh process claims errno set")
	}
	p.SetErrno(EINVAL)
	if !p.ErrnoSet() || p.Errno() != EINVAL {
		t.Errorf("errno = %d set=%v", p.Errno(), p.ErrnoSet())
	}
	p.ClearErrno()
	if p.ErrnoSet() || p.Errno() != 0 {
		t.Error("ClearErrno did not reset")
	}
}

func TestErrnoNames(t *testing.T) {
	if got := ErrnoName(EINVAL); got != "EINVAL" {
		t.Errorf("ErrnoName(EINVAL) = %q", got)
	}
	if got := ErrnoName(ENOENT); got != "ENOENT" {
		t.Errorf("ErrnoName(ENOENT) = %q", got)
	}
	if got := ErrnoName(999); !strings.Contains(got, "999") {
		t.Errorf("ErrnoName(999) = %q", got)
	}
}

func TestForkIsolation(t *testing.T) {
	p := NewProcess(nil)
	a := p.Malloc(16)
	p.StoreByte(a, 1)
	c := p.Fork()
	c.StoreByte(a, 2)
	if b := p.LoadByte(a); b != 1 {
		t.Errorf("parent saw child write: %d", b)
	}
	c.SetErrno(EIO)
	if p.Errno() == EIO {
		t.Error("parent errno affected by child")
	}
}

func TestFSCreateLookupList(t *testing.T) {
	fs := NewFS()
	fs.Create("/tmp/a.txt", []byte("hello"))
	fs.Create("/tmp/b.txt", nil)
	fs.Mkdir("/tmp/sub")
	f, ok := fs.Lookup("/tmp/a.txt")
	if !ok || string(f.Data) != "hello" {
		t.Fatalf("Lookup = %v, %v", f, ok)
	}
	if _, ok := fs.Lookup("/tmp"); !ok {
		t.Error("parent dir not auto-created")
	}
	got := fs.List("/tmp")
	want := []string{"a.txt", "b.txt", "sub"}
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("List[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if !fs.Remove("/tmp/b.txt") {
		t.Error("Remove failed")
	}
	if fs.Remove("/tmp/b.txt") {
		t.Error("double Remove succeeded")
	}
}

func TestOpenFile(t *testing.T) {
	fs := NewFS()
	fs.Create("/data/in.txt", []byte("content"))
	p := NewProcess(fs)

	fd := p.OpenFile("/data/in.txt", ReadOnly, false)
	if fd < 0 {
		t.Fatalf("OpenFile = %d, errno %d", fd, p.Errno())
	}
	of := p.FD(fd)
	if of == nil || string(of.File.Data) != "content" {
		t.Fatal("FD lookup failed")
	}
	if !p.CloseFD(fd) {
		t.Error("CloseFD failed")
	}
	if p.FD(fd) != nil {
		t.Error("fd live after close")
	}
	if p.CloseFD(fd) {
		t.Error("double close succeeded")
	}
	if p.Errno() != EBADF {
		t.Errorf("errno after bad close = %d, want EBADF", p.Errno())
	}

	if fd := p.OpenFile("/missing", ReadOnly, false); fd != -1 {
		t.Errorf("open of missing file = %d", fd)
	}
	if p.Errno() != ENOENT {
		t.Errorf("errno = %d, want ENOENT", p.Errno())
	}
	if fd := p.OpenFile("/new.txt", WriteOnly, true); fd < 0 {
		t.Errorf("create open failed: errno %d", p.Errno())
	}
}

func TestOpenDir(t *testing.T) {
	fs := NewFS()
	fs.Create("/d/x", nil)
	fs.Create("/d/y", nil)
	p := NewProcess(fs)
	fd := p.OpenDir("/d")
	if fd < 0 {
		t.Fatalf("OpenDir failed: errno %d", p.Errno())
	}
	of := p.FD(fd)
	if !of.IsDir || len(of.Entries) != 2 {
		t.Errorf("dir entries = %v", of.Entries)
	}
	if fd := p.OpenDir("/d/x"); fd != -1 || p.Errno() != ENOTDIR {
		t.Errorf("OpenDir(file) = %d, errno %d", fd, p.Errno())
	}
	if fd := p.OpenDir("/nope"); fd != -1 || p.Errno() != ENOENT {
		t.Errorf("OpenDir(missing) = %d, errno %d", fd, p.Errno())
	}
}

func TestNewFILELayout(t *testing.T) {
	p := NewProcess(nil)
	fp := p.NewFILE(7, FILEFlagRead|FILEFlagWrite)
	if fp == 0 {
		t.Fatal("NewFILE returned null")
	}
	if m := p.LoadU32(fp + FILEOffMagic); m != FILEMagic {
		t.Errorf("magic = %#x", m)
	}
	if fd := p.FILEFd(fp); fd != 7 {
		t.Errorf("FILEFd = %d", fd)
	}
	buf := cmem.Addr(p.LoadU64(fp + FILEOffBufPtr))
	if buf == 0 {
		t.Fatal("no stdio buffer")
	}
	// The buffer must be writable simulated memory.
	p.StoreByte(buf, 0xAB)
	if sz := p.LoadU64(fp + FILEOffBufSize); sz != FILEBufSize {
		t.Errorf("bufsize = %d", sz)
	}
}

func TestFopenModes(t *testing.T) {
	fs := NewFS()
	fs.Create("/f.txt", []byte("abc"))
	tests := []struct {
		mode   string
		wantOK bool
		errno  int
		name   string
	}{
		{mode: "r", wantOK: true, name: "/f.txt"},
		{mode: "r+", wantOK: true, name: "/f.txt"},
		{mode: "w", wantOK: true, name: "/f.txt"},
		{mode: "w+", wantOK: true, name: "/f.txt"},
		{mode: "a", wantOK: true, name: "/f.txt"},
		{mode: "a+", wantOK: true, name: "/f.txt"},
		{mode: "rb", wantOK: true, name: "/f.txt"},
		{mode: "x", wantOK: false, errno: EINVAL, name: "/f.txt"},
		{mode: "", wantOK: false, errno: EINVAL, name: "/f.txt"},
		{mode: "r", wantOK: false, errno: ENOENT, name: "/missing.txt"},
	}
	for _, tt := range tests {
		t.Run(tt.mode+"_"+tt.name, func(t *testing.T) {
			p := NewProcess(fs)
			fs.Create("/f.txt", []byte("abc")) // reset after truncations
			fp := p.Fopen(tt.name, tt.mode)
			if tt.wantOK && fp == 0 {
				t.Fatalf("Fopen failed: errno %d", p.Errno())
			}
			if !tt.wantOK {
				if fp != 0 {
					t.Fatal("Fopen succeeded unexpectedly")
				}
				if p.Errno() != tt.errno {
					t.Errorf("errno = %d, want %d", p.Errno(), tt.errno)
				}
			}
		})
	}
}

func TestFopenTruncateAndAppend(t *testing.T) {
	fs := NewFS()
	fs.Create("/t.txt", []byte("12345"))
	p := NewProcess(fs)
	fp := p.Fopen("/t.txt", "w")
	if fp == 0 {
		t.Fatal("fopen w failed")
	}
	f, _ := fs.Lookup("/t.txt")
	if len(f.Data) != 0 {
		t.Errorf("mode w did not truncate: %q", f.Data)
	}
	fs.Create("/t.txt", []byte("12345"))
	fp = p.Fopen("/t.txt", "a")
	if fp == 0 {
		t.Fatal("fopen a failed")
	}
	of := p.FD(p.FILEFd(fp))
	if of.Pos != 5 || !of.Append {
		t.Errorf("append pos = %d append=%v", of.Pos, of.Append)
	}
}

func TestNewDIRLayout(t *testing.T) {
	p := NewProcess(nil)
	dp := p.NewDIR(5)
	if dp == 0 {
		t.Fatal("NewDIR returned null")
	}
	if m := p.LoadU32(dp + DIROffMagic); m != DIRMagic {
		t.Errorf("magic = %#x", m)
	}
	if fd := int(int32(p.LoadU32(dp + DIROffFD))); fd != 5 {
		t.Errorf("fd = %d", fd)
	}
}

func TestOutcomeStrings(t *testing.T) {
	outs := []Outcome{
		{Kind: OutcomeReturn, Ret: 1},
		{Kind: OutcomeSegfault, Fault: &cmem.Fault{Addr: 0x10}},
		{Kind: OutcomeHang},
		{Kind: OutcomeAbort},
	}
	for _, o := range outs {
		if o.String() == "" {
			t.Errorf("empty string for %v", o.Kind)
		}
	}
	if OutcomeKind(0).String() == "" {
		t.Error("zero kind has empty string")
	}
}

func TestMallocSetsErrnoOnFailure(t *testing.T) {
	p := NewProcess(nil)
	if a := p.Malloc(-1); a != 0 {
		t.Errorf("Malloc(-1) = %#x", uint64(a))
	}
	if p.Errno() != ENOMEM {
		t.Errorf("errno = %d, want ENOMEM", p.Errno())
	}
}

func TestFILEFdOnGarbage(t *testing.T) {
	p := NewProcess(nil)
	a, _ := p.Mem.MmapRegion(csimSizeofFILEAlias, cmem.ProtRW)
	if fd := p.FILEFd(a); fd != 0 {
		t.Errorf("zeroed FILE fd = %d", fd)
	}
}

const csimSizeofFILEAlias = SizeofFILE

func TestOpenDirWritableRejected(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/d")
	p := NewProcess(fs)
	if fd := p.OpenFile("/d", WriteOnly, false); fd != -1 || p.Errno() != EISDIR {
		t.Errorf("open(dir, W) = %d errno=%d", fd, p.Errno())
	}
	// Reading a directory through open is tolerated (open(dir, O_RDONLY)).
	if fd := p.OpenFile("/d", ReadOnly, false); fd < 0 {
		t.Errorf("open(dir, R) failed: %d", p.Errno())
	}
}

func TestAccessModePredicates(t *testing.T) {
	if !ReadOnly.Readable() || ReadOnly.Writable() {
		t.Error("ReadOnly wrong")
	}
	if WriteOnly.Readable() || !WriteOnly.Writable() {
		t.Error("WriteOnly wrong")
	}
	if !ReadWrite.Readable() || !ReadWrite.Writable() {
		t.Error("ReadWrite wrong")
	}
}

package csim

import (
	"testing"

	"healers/internal/cmem"
)

func TestCallbackRegistrationAndCall(t *testing.T) {
	p := NewProcess(nil)
	addr := p.RegisterCallback(func(pp *Process, args []uint64) uint64 {
		return args[0] + args[1]
	})
	if !p.IsCode(addr) {
		t.Error("callback address not in text segment")
	}
	if got := p.CallPtr(addr, []uint64{2, 3}); got != 5 {
		t.Errorf("CallPtr = %d", got)
	}
}

func TestCallPtrGarbageRaisesSegv(t *testing.T) {
	p := NewProcess(nil)
	out := p.Run(func() uint64 {
		return p.CallPtr(0xdeadbeef, nil)
	})
	if out.Kind != OutcomeSegfault {
		t.Fatalf("CallPtr(garbage) = %v", out)
	}
	if out.Fault.Addr != 0xdeadbeef {
		t.Errorf("fault at %#x", uint64(out.Fault.Addr))
	}
}

func TestCallbacksSurviveFork(t *testing.T) {
	p := NewProcess(nil)
	addr := p.RegisterCallback(func(pp *Process, args []uint64) uint64 { return 7 })
	c := p.Fork()
	if got := c.CallPtr(addr, nil); got != 7 {
		t.Errorf("forked CallPtr = %d", got)
	}
}

func TestStaticAreasArePerOwnerAndStable(t *testing.T) {
	p := NewProcess(nil)
	a1 := p.Static("x", 64)
	a2 := p.Static("x", 64)
	b1 := p.Static("y", 64)
	if a1 != a2 {
		t.Error("same owner returned different statics")
	}
	if a1 == b1 {
		t.Error("different owners share a static")
	}
	p.StoreU64(a1, 42)
	c := p.Fork()
	if c.Static("x", 64) != a1 {
		t.Error("fork lost the static address")
	}
	if v := c.LoadU64(a1); v != 42 {
		t.Errorf("fork lost static contents: %d", v)
	}
}

func TestStdinConsumption(t *testing.T) {
	p := NewProcess(nil)
	p.Stdin = []byte("ab")
	if b, ok := p.StdinReadByte(); !ok || b != 'a' {
		t.Errorf("first = %c %v", b, ok)
	}
	c := p.Fork() // child inherits the read position
	if b, ok := c.StdinReadByte(); !ok || b != 'b' {
		t.Errorf("forked second = %c %v", b, ok)
	}
	// Parent position unaffected by the child.
	if b, ok := p.StdinReadByte(); !ok || b != 'b' {
		t.Errorf("parent second = %c %v", b, ok)
	}
	if _, ok := p.StdinReadByte(); ok {
		t.Error("EOF not reported")
	}
}

func TestCopyFromUserFailsOnBadMemory(t *testing.T) {
	p := NewProcess(nil)
	if _, ok := p.CopyFromUser(0xdead0000, 4); ok {
		t.Error("bad read succeeded")
	}
	if p.CopyToUser(0xdead0000, []byte{1}) {
		t.Error("bad write succeeded")
	}
	if _, ok := p.StrFromUser(0); ok {
		t.Error("null string read succeeded")
	}
	buf, err := p.Mem.MmapRegion(16, cmem.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	p.Mem.WriteCString(buf, "hi")
	if s, ok := p.StrFromUser(buf); !ok || s != "hi" {
		t.Errorf("StrFromUser = %q %v", s, ok)
	}
}

func TestFSCloneIsolation(t *testing.T) {
	fs := NewFS()
	fs.Create("/f", []byte("original"))
	c := fs.Clone()
	cf, _ := c.Lookup("/f")
	cf.Data[0] = 'X'
	c.Remove("/f")
	of, ok := fs.Lookup("/f")
	if !ok {
		t.Fatal("original lost the file")
	}
	if string(of.Data) != "original" {
		t.Errorf("original mutated: %q", of.Data)
	}
}

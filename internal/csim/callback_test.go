package csim

import (
	"testing"

	"healers/internal/cmem"
)

func TestCallbackRegistrationAndCall(t *testing.T) {
	p := NewProcess(nil)
	addr := p.RegisterCallback(func(pp *Process, args []uint64) uint64 {
		return args[0] + args[1]
	})
	if !p.IsCode(addr) {
		t.Error("callback address not in text segment")
	}
	if got := p.CallPtr(addr, []uint64{2, 3}); got != 5 {
		t.Errorf("CallPtr = %d", got)
	}
}

func TestCallPtrGarbageRaisesSegv(t *testing.T) {
	p := NewProcess(nil)
	out := p.Run(func() uint64 {
		return p.CallPtr(0xdeadbeef, nil)
	})
	if out.Kind != OutcomeSegfault {
		t.Fatalf("CallPtr(garbage) = %v", out)
	}
	if out.Fault.Addr != 0xdeadbeef {
		t.Errorf("fault at %#x", uint64(out.Fault.Addr))
	}
}

func TestCallbacksSurviveFork(t *testing.T) {
	p := NewProcess(nil)
	addr := p.RegisterCallback(func(pp *Process, args []uint64) uint64 { return 7 })
	c := p.Fork()
	if got := c.CallPtr(addr, nil); got != 7 {
		t.Errorf("forked CallPtr = %d", got)
	}
}

func TestStaticAreasArePerOwnerAndStable(t *testing.T) {
	p := NewProcess(nil)
	a1 := p.Static("x", 64)
	a2 := p.Static("x", 64)
	b1 := p.Static("y", 64)
	if a1 != a2 {
		t.Error("same owner returned different statics")
	}
	if a1 == b1 {
		t.Error("different owners share a static")
	}
	p.StoreU64(a1, 42)
	c := p.Fork()
	if c.Static("x", 64) != a1 {
		t.Error("fork lost the static address")
	}
	if v := c.LoadU64(a1); v != 42 {
		t.Errorf("fork lost static contents: %d", v)
	}
}

func TestStdinConsumption(t *testing.T) {
	p := NewProcess(nil)
	p.Stdin = []byte("ab")
	if b, ok := p.StdinReadByte(); !ok || b != 'a' {
		t.Errorf("first = %c %v", b, ok)
	}
	c := p.Fork() // child inherits the read position
	if b, ok := c.StdinReadByte(); !ok || b != 'b' {
		t.Errorf("forked second = %c %v", b, ok)
	}
	// Parent position unaffected by the child.
	if b, ok := p.StdinReadByte(); !ok || b != 'b' {
		t.Errorf("parent second = %c %v", b, ok)
	}
	if _, ok := p.StdinReadByte(); ok {
		t.Error("EOF not reported")
	}
}

func TestCopyFromUserFailsOnBadMemory(t *testing.T) {
	p := NewProcess(nil)
	if _, ok := p.CopyFromUser(0xdead0000, 4); ok {
		t.Error("bad read succeeded")
	}
	if p.CopyToUser(0xdead0000, []byte{1}) {
		t.Error("bad write succeeded")
	}
	if _, ok := p.StrFromUser(0); ok {
		t.Error("null string read succeeded")
	}
	buf, err := p.Mem.MmapRegion(16, cmem.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	p.Mem.WriteCString(buf, "hi")
	if s, ok := p.StrFromUser(buf); !ok || s != "hi" {
		t.Errorf("StrFromUser = %q %v", s, ok)
	}
}

func TestFSCloneIsolation(t *testing.T) {
	fs := NewFS()
	fs.Create("/f", []byte("original"))
	c := fs.Clone()
	// The clone shares file pointers frozen; name-table mutations are
	// already private, and data mutations must privatize first.
	cf, _ := c.Lookup("/f")
	if !cf.Frozen() {
		t.Fatal("cloned file not frozen")
	}
	c.Create("/f", []byte("Xriginal")) // replace = private copy
	c.Remove("/g")
	of, ok := fs.Lookup("/f")
	if !ok {
		t.Fatal("original lost the file")
	}
	if string(of.Data) != "original" {
		t.Errorf("original mutated: %q", of.Data)
	}
}

// TestForkWritableFDIsolation pins the descriptor half of the COW
// filesystem: writable descriptors survive a fork still sharing the
// frozen file bytes (a fork costs no copy), the first in-place
// mutation privatizes through PrivatizeForWrite, and after it the
// writer's bytes never reach the parent or a sibling.
func TestForkWritableFDIsolation(t *testing.T) {
	parent := NewProcess(nil)
	parent.FS.Create("/fix", []byte("fixture"))
	wfd := parent.OpenFile("/fix", WriteOnly, false)
	if wfd < 0 {
		t.Fatal("parent open failed")
	}

	childA := parent.Fork()
	childB := parent.Fork()

	// Forking copies nothing: every side still references the frozen
	// shared file, writable descriptor or not.
	for name, pr := range map[string]*Process{"parent": parent, "childA": childA, "childB": childB} {
		of := pr.FD(wfd)
		if of == nil {
			t.Fatalf("%s lost the descriptor", name)
		}
		if !of.File.Frozen() {
			t.Fatalf("%s paid an eager copy for its writable descriptor", name)
		}
	}

	// In-place truncate+write in child A, privatizing first as every
	// stdio/unistd mutation path does.
	ofA := childA.FD(wfd)
	childA.PrivatizeForWrite(ofA)
	if ofA.File.Frozen() {
		t.Fatal("PrivatizeForWrite left the file frozen")
	}
	ofA.File.Data = append(ofA.File.Data[:0], 'A')
	bf, _ := childB.FS.Lookup("/fix")
	pf, _ := parent.FS.Lookup("/fix")
	if string(bf.Data) != "fixture" || string(pf.Data) != "fixture" {
		t.Fatalf("child A write leaked: parent=%q childB=%q", pf.Data, bf.Data)
	}
	// The privatization re-pointed child A's own name table too.
	if af, _ := childA.FS.Lookup("/fix"); string(af.Data) != "A" {
		t.Fatalf("child A name table out of sync with its descriptor: %q", af.Data)
	}

	// Advancing a child's position must not move the parent's.
	ofA.Pos = 3
	if parent.FD(wfd).Pos != 0 {
		t.Fatalf("child position shared with parent: %d", parent.FD(wfd).Pos)
	}
}

// TestForkDupAliasPreserved pins that dup'd descriptors stay aliased
// within each forked process: the pair shares one open-file description
// per process, not one per descriptor.
func TestForkDupAliasPreserved(t *testing.T) {
	parent := NewProcess(nil)
	parent.FS.Create("/fix", []byte("fixture"))
	fd1 := parent.OpenFile("/fix", ReadOnly, false)
	fd2 := parent.DupFD(parent.FD(fd1))

	child := parent.Fork()
	if child.FD(fd1) != child.FD(fd2) {
		t.Fatal("dup alias broken by fork")
	}
	if child.FD(fd1) == parent.FD(fd1) {
		t.Fatal("child shares the parent's open-file description")
	}
	child.FD(fd1).Pos = 5
	if child.FD(fd2).Pos != 5 {
		t.Fatal("aliased descriptors diverged in child")
	}
	if parent.FD(fd1).Pos != 0 {
		t.Fatal("child position moved the parent's")
	}
}

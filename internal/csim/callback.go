package csim

import "healers/internal/cmem"

// Callback support: simulated function pointers. Code addresses live in
// a dedicated text-segment range; calling an unregistered address raises
// SIGSEGV at that address, which is how a C program dies when it jumps
// through a garbage function pointer (qsort with a bad comparator).

const (
	textBase cmem.Addr = 0x0000_0040_0000 // classic ELF text base
	textStep cmem.Addr = 16               // one "function" every 16 bytes
	textSize cmem.Addr = 1 << 20
)

// Callback is a simulated C function value.
type Callback func(p *Process, args []uint64) uint64

// RegisterCallback installs fn at a fresh simulated code address and
// returns that address. The address can be passed to library functions
// expecting a function pointer.
func (p *Process) RegisterCallback(fn Callback) cmem.Addr {
	if p.callbacks == nil {
		p.callbacks = make(map[cmem.Addr]Callback)
	}
	addr := textBase + textStep*cmem.Addr(len(p.callbacks)+1)
	p.callbacks[addr] = fn
	return addr
}

// CallPtr invokes the function at code address addr. Jumping to an
// address that holds no function raises SIGSEGV at that address.
func (p *Process) CallPtr(addr cmem.Addr, args []uint64) uint64 {
	fn, ok := p.callbacks[addr]
	if !ok {
		p.RaiseSegv(&cmem.Fault{Addr: addr, Access: cmem.AccessRead})
	}
	p.Step()
	return fn(p, args)
}

// IsCode reports whether addr is inside the simulated text segment.
func (p *Process) IsCode(addr cmem.Addr) bool {
	return addr >= textBase && addr < textBase+textSize
}

package csim

import "healers/internal/cmem"

// Simulated ABI: the byte layouts of the C structures that cross the
// library boundary. The layout constants are shared by the library
// implementation (package clib), the test-case generators (package gens)
// and the wrapper's checking functions (package wrapper), exactly as a
// real ABI is shared by libc, Ballista and HEALERS.
//
// The ABI models a 32-bit-int / 64-bit-pointer platform. struct tm is 9
// ints plus a long UTC offset = 44 bytes, matching the paper's
// R_ARRAY_NULL[44] robust type for asctime.

// Sizes of ABI structures in bytes.
const (
	SizeofTm      = 44  // struct tm: 9 x int32 + int64 tm_gmtoff
	SizeofFILE    = 152 // FILE: magic, fd, flags, ungetc, buffer ptr/size/pos + reserve
	SizeofDIR     = 64  // DIR: magic, fd, position
	SizeofStat    = 64  // struct stat subset
	SizeofTermios = 56  // termios: 4 flag words + 32 control chars + 2 speeds
)

// Magic numbers stored in the first word of FILE and DIR structures.
// The simulated libc never checks them (it is as trusting as glibc);
// only semi-automatic wrapper assertions do.
const (
	FILEMagic uint32 = 0xF11E_0001
	DIRMagic  uint32 = 0xD1D1_0001
)

// FILE structure field offsets.
const (
	FILEOffMagic   = 0
	FILEOffFD      = 4
	FILEOffFlags   = 8
	FILEOffUngetc  = 12
	FILEOffBufPtr  = 16
	FILEOffBufSize = 24
	FILEOffBufPos  = 32
	FILEOffError   = 40
	FILEOffEOF     = 44
)

// FILE flag bits stored at FILEOffFlags.
const (
	FILEFlagRead uint32 = 1 << iota
	FILEFlagWrite
	FILEFlagAppend
)

// DIR structure field offsets. Like glibc's DIR, the structure carries a
// pointer to an internal dirent buffer; readdir returns pointers into it.
// A corrupted-but-accessible DIR therefore crashes the library inside
// that buffer — the struct-integrity failure class that survives the
// fully automatic wrapper in the paper's evaluation.
const (
	DIROffMagic = 0
	DIROffFD    = 4
	DIROffPos   = 8
	DIROffBuf   = 16
)

// struct dirent field offsets: d_ino u64, then a 256-byte d_name.
const (
	DirentOffIno  = 0
	DirentOffName = 8
	SizeofDirent  = 264
)

// struct stat field offsets (subset).
const (
	StatOffDev  = 0
	StatOffIno  = 8
	StatOffMode = 16
	StatOffSize = 24
)

// struct tm field offsets (all int32 except GmtOff which is int64).
const (
	TmOffSec    = 0
	TmOffMin    = 4
	TmOffHour   = 8
	TmOffMday   = 12
	TmOffMon    = 16
	TmOffYear   = 20
	TmOffWday   = 24
	TmOffYday   = 28
	TmOffIsdst  = 32
	TmOffGmtOff = 36
)

// termios field offsets.
const (
	TermiosOffIflag  = 0
	TermiosOffOflag  = 4
	TermiosOffCflag  = 8
	TermiosOffLflag  = 12
	TermiosOffCC     = 16 // 32 control characters
	TermiosOffIspeed = 48
	TermiosOffOspeed = 52
)

// FILEBufSize is the stdio buffer size attached to each open FILE.
const FILEBufSize = 1024

// NewFILE allocates a FILE structure plus its stdio buffer on the
// simulated heap and initializes it for descriptor fd. Returns the
// address of the FILE, or 0 on allocation failure.
func (p *Process) NewFILE(fd int, flags uint32) cmem.Addr {
	fp := p.Malloc(SizeofFILE)
	if fp == 0 {
		return 0
	}
	buf := p.Malloc(FILEBufSize)
	if buf == 0 {
		return 0
	}
	p.StoreU32(fp+FILEOffMagic, FILEMagic)
	p.StoreU32(fp+FILEOffFD, uint32(int32(fd)))
	p.StoreU32(fp+FILEOffFlags, flags)
	p.StoreU32(fp+FILEOffUngetc, uint32(^uint32(0))) // -1: no pushed-back char
	p.StoreU64(fp+FILEOffBufPtr, uint64(buf))
	p.StoreU64(fp+FILEOffBufSize, FILEBufSize)
	p.StoreU64(fp+FILEOffBufPos, 0)
	p.StoreU32(fp+FILEOffError, 0)
	p.StoreU32(fp+FILEOffEOF, 0)
	return fp
}

// NewDIR allocates and initializes a DIR structure (plus its internal
// dirent buffer) for descriptor fd.
func (p *Process) NewDIR(fd int) cmem.Addr {
	dp := p.Malloc(SizeofDIR)
	if dp == 0 {
		return 0
	}
	buf := p.Malloc(SizeofDirent)
	if buf == 0 {
		return 0
	}
	p.StoreU32(dp+DIROffMagic, DIRMagic)
	p.StoreU32(dp+DIROffFD, uint32(int32(fd)))
	p.StoreU64(dp+DIROffPos, 0)
	p.StoreU64(dp+DIROffBuf, uint64(buf))
	return dp
}

// FILEFd reads the descriptor number out of a FILE structure. It faults
// if the FILE memory is inaccessible — this is precisely the read the
// wrapper's fileno-based validation performs under its own protection.
func (p *Process) FILEFd(fp cmem.Addr) int {
	return int(int32(p.LoadU32(fp + FILEOffFD)))
}

// Fopen opens name and allocates a FILE for it. mode follows fopen(3)
// semantics for "r", "w", "a", with optional "+" and ignored "b".
// Invalid mode strings yield 0 with EINVAL, matching the paper's ground
// truth that fopen copes with bad filenames but not bad modes — the
// *crash* on a bad mode happens in clib before validity is established.
func (p *Process) Fopen(name, mode string) cmem.Addr {
	var (
		acc    AccessMode
		create bool
		trunc  bool
		app    bool
		plus   bool
	)
	base := byte(0)
	if len(mode) > 0 {
		base = mode[0]
	}
	for _, c := range mode[min(1, len(mode)):] {
		switch c {
		case '+':
			plus = true
		case 'b':
			// binary flag: no effect
		default:
			p.SetErrno(EINVAL)
			return 0
		}
	}
	switch base {
	case 'r':
		acc = ReadOnly
	case 'w':
		acc, create, trunc = WriteOnly, true, true
	case 'a':
		acc, create, app = WriteOnly, true, true
	default:
		p.SetErrno(EINVAL)
		return 0
	}
	if plus {
		acc = ReadWrite
	}
	fd := p.OpenFile(name, acc, create)
	if fd < 0 {
		return 0
	}
	of := p.FD(fd)
	if trunc {
		p.PrivatizeForWrite(of)
		of.File.Data = of.File.Data[:0]
	}
	if app {
		of.Pos = len(of.File.Data)
		of.Append = true
	}
	var flags uint32
	if acc.Readable() {
		flags |= FILEFlagRead
	}
	if acc.Writable() {
		flags |= FILEFlagWrite
	}
	if app {
		flags |= FILEFlagAppend
	}
	fp := p.NewFILE(fd, flags)
	if fp == 0 {
		p.CloseFD(fd)
		return 0
	}
	return fp
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Package csim simulates a Unix process hosting the C library under test.
//
// A Process owns a simulated address space (package cmem), an errno cell,
// a file-descriptor table over an in-memory filesystem, and a step budget
// used to detect hangs. Simulated C functions access memory through the
// Load*/Store* helpers, which raise a simulated SIGSEGV (an internal
// panic) on a bad access; Run recovers the signal and reports a structured
// Outcome, exactly as the paper's child process converts signals into
// observations for the fault injector.
package csim

import (
	"fmt"

	"healers/internal/cmem"
)

// Errno values used by the simulated library. The numeric values match
// Linux so that generated declarations read naturally.
const (
	EPERM   = 1
	ENOENT  = 2
	EINTR   = 4
	EIO     = 5
	EBADF   = 9
	ENOMEM  = 12
	EACCES  = 13
	EFAULT  = 14
	EEXIST  = 17
	ENOTDIR = 20
	EISDIR  = 21
	EINVAL  = 22
	EMFILE  = 24
	ERANGE  = 34
)

// ErrnoName returns the symbolic name for an errno value, for use in
// generated declarations and reports.
func ErrnoName(e int) string {
	switch e {
	case 0:
		return "0"
	case EPERM:
		return "EPERM"
	case ENOENT:
		return "ENOENT"
	case EINTR:
		return "EINTR"
	case EIO:
		return "EIO"
	case EBADF:
		return "EBADF"
	case ENOMEM:
		return "ENOMEM"
	case EACCES:
		return "EACCES"
	case EFAULT:
		return "EFAULT"
	case EEXIST:
		return "EEXIST"
	case ENOTDIR:
		return "ENOTDIR"
	case EISDIR:
		return "EISDIR"
	case EINVAL:
		return "EINVAL"
	case EMFILE:
		return "EMFILE"
	case ERANGE:
		return "ERANGE"
	}
	return fmt.Sprintf("E#%d", e)
}

// OutcomeKind classifies what a sandboxed call did.
type OutcomeKind uint8

// Outcome kinds. A call either returns normally, dies on a simulated
// SIGSEGV, exceeds its step budget (a hang), or aborts.
const (
	OutcomeReturn OutcomeKind = iota + 1
	OutcomeSegfault
	OutcomeHang
	OutcomeAbort
)

func (k OutcomeKind) String() string {
	switch k {
	case OutcomeReturn:
		return "return"
	case OutcomeSegfault:
		return "segfault"
	case OutcomeHang:
		return "hang"
	case OutcomeAbort:
		return "abort"
	}
	return fmt.Sprintf("OutcomeKind(%d)", uint8(k))
}

// Outcome is the observable result of one sandboxed call.
type Outcome struct {
	Kind  OutcomeKind
	Ret   uint64      // return value, valid when Kind == OutcomeReturn
	Errno int         // errno after the call (0 if untouched)
	Fault *cmem.Fault // faulting access, valid when Kind == OutcomeSegfault
	Steps int         // simulated steps the call consumed
}

// Crashed reports whether the outcome is any of the failure kinds the
// paper counts as a robustness violation (crash, hang, or abort).
func (o Outcome) Crashed() bool {
	return o.Kind == OutcomeSegfault || o.Kind == OutcomeHang || o.Kind == OutcomeAbort
}

func (o Outcome) String() string {
	switch o.Kind {
	case OutcomeReturn:
		return fmt.Sprintf("return %#x (errno %s)", o.Ret, ErrnoName(o.Errno))
	case OutcomeSegfault:
		return fmt.Sprintf("SIGSEGV at %#x", uint64(o.Fault.Addr))
	default:
		return o.Kind.String()
	}
}

// Internal panic payloads raised by the access helpers and recovered by
// Run. They never escape this package's sandbox.
type (
	segvSignal struct{ fault *cmem.Fault }
	hangSignal struct{}
	abrtSignal struct{}
)

// DefaultStepBudget bounds the simulated work per sandboxed call; a call
// that exceeds it is classified as a hang, standing in for the paper's
// timeout on the child process.
const DefaultStepBudget = 1 << 20

// Process is a simulated process. It is not safe for concurrent use.
type Process struct {
	Mem *cmem.Memory
	FS  *FS

	errno      int
	errnoSet   bool // errno written since last ClearErrno
	fds        map[int]*OpenFD
	nextFD     int
	steps      int
	stepBudget int
	callbacks  map[cmem.Addr]Callback

	// Stdin is the byte stream consumed by gets/fgetc-style reads from
	// the simulated standard input; stdinPos tracks consumption.
	Stdin    []byte
	stdinPos int
	// Stdout accumulates bytes written by puts/perror for inspection.
	Stdout []byte

	// statics holds lazily allocated static data areas (e.g. the struct
	// tm returned by gmtime), keyed by an owner name.
	statics map[string]cmem.Addr

	// Cwd is the simulated current working directory.
	Cwd string

	// Metrics, when non-nil, tallies every sandboxed call's outcome and
	// step count (the obs boundary counters). Children share it across
	// Fork so a campaign's accounting survives per-test forking.
	Metrics *Metrics
}

// NewProcess returns a fresh process over fs with stdin/stdout/stderr
// style descriptors left unallocated (fds start at 3, like a shell child).
func NewProcess(fs *FS) *Process {
	if fs == nil {
		fs = NewFS()
	}
	return &Process{
		Mem:        cmem.New(),
		FS:         fs,
		fds:        make(map[int]*OpenFD),
		nextFD:     3,
		stepBudget: DefaultStepBudget,
		Cwd:        "/",
	}
}

// Fork returns a copy of the process: copy-on-write memory (the child
// shares every page with the parent until one of them writes it),
// copy-on-write filesystem (files are shared frozen and privatized on
// the first mutation), and a deep-copied descriptor table. The fault
// injector forks a child per test call so a crash cannot corrupt the
// parent.
//
// Descriptor semantics matter for checkpoint forking (fork-of-fork
// with descriptors open): each child gets its own OpenFD structs —
// dup aliases within one process stay aliased, but a child advancing a
// file position can never move a sibling's. Descriptors inherited open
// for writing keep referencing the frozen shared file; the first
// in-place mutation on either side privatizes through
// PrivatizeForWrite, so a child that only reads its inherited FILE
// shares the bytes for free.
//
// Fork only reads the parent besides the atomic freeze bits, so one
// idle process may be forked concurrently from several goroutines —
// the parallel campaign schedulers fork templates that way, and
// checkpoint nodes are additionally confined to their owning
// goroutine because their descriptors carry mutable state (positions,
// lazily privatized files) with no synchronization.
func (p *Process) Fork() *Process {
	c := &Process{
		Mem:        p.Mem.Clone(),
		FS:         p.FS.Clone(),
		errno:      p.errno,
		errnoSet:   p.errnoSet,
		fds:        make(map[int]*OpenFD, len(p.fds)),
		nextFD:     p.nextFD,
		stepBudget: p.stepBudget,
		Stdin:      p.Stdin,
		stdinPos:   p.stdinPos,
		Stdout:     append([]byte(nil), p.Stdout...),
		Cwd:        p.Cwd,
		Metrics:    p.Metrics,
	}
	// Deep-copy the descriptor table preserving dup aliasing: two fds
	// sharing one open-file description in the parent share one copied
	// description in the child.
	copied := make(map[*OpenFD]*OpenFD, len(p.fds))
	for fd, of := range p.fds {
		nf, ok := copied[of]
		if !ok {
			cp := *of
			cp.Entries = append([]string(nil), of.Entries...)
			// The description's file may be unlinked-but-open (absent
			// from the name table, so FS.Clone never froze it); freeze
			// it here — both processes now reference it.
			if cp.File != nil {
				cp.File.frozen.Store(true)
			}
			nf = &cp
			copied[of] = nf
		}
		c.fds[fd] = nf
	}
	if p.statics != nil {
		c.statics = make(map[string]cmem.Addr, len(p.statics))
		for k, v := range p.statics {
			c.statics[k] = v
		}
	}
	if p.callbacks != nil {
		c.callbacks = make(map[cmem.Addr]Callback, len(p.callbacks))
		for a, fn := range p.callbacks {
			c.callbacks[a] = fn
		}
	}
	return c
}

// Release returns the process's exclusively owned memory pages to the
// shared page pool. The campaign drivers call it when a forked child's
// experiment completes; the process must not run code afterwards.
func (p *Process) Release() { p.Mem.Release() }

// SetStepBudget overrides the hang-detection budget for this process.
func (p *Process) SetStepBudget(n int) { p.stepBudget = n }

// StepCount returns the simulated steps consumed since the current
// sandboxed call began. The wrapper uses the delta around its checks
// as the check-latency measure.
func (p *Process) StepCount() int { return p.steps }

// Errno returns the current simulated errno value.
func (p *Process) Errno() int { return p.errno }

// ErrnoSet reports whether errno was written since the last ClearErrno.
// The injector uses this to classify error-return-code behaviour: a
// function that returns an error value without touching errno belongs
// to the paper's "No Error Return Code Found" class.
func (p *Process) ErrnoSet() bool { return p.errnoSet }

// SetErrno sets the simulated errno.
func (p *Process) SetErrno(e int) {
	p.errno = e
	p.errnoSet = true
}

// ClearErrno resets errno observation before a call, mirroring the
// injector clearing errno to 0 ahead of each experiment.
func (p *Process) ClearErrno() {
	p.errno = 0
	p.errnoSet = false
}

// Step consumes one unit of the step budget. Simulated functions call it
// inside loops; exceeding the budget raises a hang signal.
func (p *Process) Step() {
	p.steps++
	if p.steps > p.stepBudget {
		panic(hangSignal{})
	}
}

// Abort raises a simulated SIGABRT (an assertion failure in the library).
func (p *Process) Abort() { panic(abrtSignal{}) }

// RaiseSegv raises a simulated SIGSEGV for the given fault. Simulated
// library code uses it for faults detected outside the Load/Store
// helpers (e.g. a jump through a corrupted function pointer).
func (p *Process) RaiseSegv(f *cmem.Fault) { panic(segvSignal{fault: f}) }

// Run executes fn in the fault sandbox and reports its outcome. The step
// counter is reset; errno observation is NOT reset (callers decide).
func (p *Process) Run(fn func() uint64) (out Outcome) {
	p.steps = 0
	defer func() {
		r := recover()
		switch sig := r.(type) {
		case nil:
		case segvSignal:
			out = Outcome{Kind: OutcomeSegfault, Errno: p.errno, Fault: sig.fault, Steps: p.steps}
		case hangSignal:
			out = Outcome{Kind: OutcomeHang, Errno: p.errno, Steps: p.steps}
		case abrtSignal:
			out = Outcome{Kind: OutcomeAbort, Errno: p.errno, Steps: p.steps}
		default:
			panic(r) // a real bug in the simulator; do not swallow it
		}
		p.Metrics.record(out)
	}()
	ret := fn()
	return Outcome{Kind: OutcomeReturn, Ret: ret, Errno: p.errno, Steps: p.steps}
}

// --- Faulting memory accessors used by simulated C code ---

// Load reads n bytes at addr or raises SIGSEGV.
func (p *Process) Load(addr cmem.Addr, n int) []byte {
	b, f := p.Mem.Read(addr, n)
	if f != nil {
		panic(segvSignal{fault: f})
	}
	return b
}

// Store writes data at addr or raises SIGSEGV.
func (p *Process) Store(addr cmem.Addr, data []byte) {
	if f := p.Mem.Write(addr, data); f != nil {
		panic(segvSignal{fault: f})
	}
}

// LoadByte reads one byte or raises SIGSEGV.
func (p *Process) LoadByte(addr cmem.Addr) byte {
	b, f := p.Mem.LoadByte(addr)
	if f != nil {
		panic(segvSignal{fault: f})
	}
	return b
}

// StoreByte writes one byte or raises SIGSEGV.
func (p *Process) StoreByte(addr cmem.Addr, b byte) {
	if f := p.Mem.StoreByte(addr, b); f != nil {
		panic(segvSignal{fault: f})
	}
}

// LoadU32 reads a 32-bit value or raises SIGSEGV.
func (p *Process) LoadU32(addr cmem.Addr) uint32 {
	v, f := p.Mem.ReadU32(addr)
	if f != nil {
		panic(segvSignal{fault: f})
	}
	return v
}

// StoreU32 writes a 32-bit value or raises SIGSEGV.
func (p *Process) StoreU32(addr cmem.Addr, v uint32) {
	if f := p.Mem.WriteU32(addr, v); f != nil {
		panic(segvSignal{fault: f})
	}
}

// LoadU64 reads a 64-bit value or raises SIGSEGV.
func (p *Process) LoadU64(addr cmem.Addr) uint64 {
	v, f := p.Mem.ReadU64(addr)
	if f != nil {
		panic(segvSignal{fault: f})
	}
	return v
}

// StoreU64 writes a 64-bit value or raises SIGSEGV.
func (p *Process) StoreU64(addr cmem.Addr, v uint64) {
	if f := p.Mem.WriteU64(addr, v); f != nil {
		panic(segvSignal{fault: f})
	}
}

// LoadCString reads a NUL-terminated string or raises SIGSEGV.
func (p *Process) LoadCString(addr cmem.Addr) string {
	s, f := p.Mem.CString(addr)
	if f != nil {
		panic(segvSignal{fault: f})
	}
	return s
}

// StoreCString writes s plus a terminator or raises SIGSEGV.
func (p *Process) StoreCString(addr cmem.Addr, s string) {
	if f := p.Mem.WriteCString(addr, s); f != nil {
		panic(segvSignal{fault: f})
	}
}

// Static returns (allocating on first use) a static data area of the
// given size owned by name — the simulated equivalent of a library's
// .bss buffer, such as the struct tm that gmtime returns.
func (p *Process) Static(name string, size int) cmem.Addr {
	if a, ok := p.statics[name]; ok {
		return a
	}
	a, err := p.Mem.MmapRegion(size, cmem.ProtRW)
	if err != nil {
		p.SetErrno(ENOMEM)
		return 0
	}
	if p.statics == nil {
		p.statics = make(map[string]cmem.Addr)
	}
	p.statics[name] = a
	return a
}

// StdinReadByte consumes one byte of standard input; ok is false at EOF.
func (p *Process) StdinReadByte() (byte, bool) {
	if p.stdinPos >= len(p.Stdin) {
		return 0, false
	}
	b := p.Stdin[p.stdinPos]
	p.stdinPos++
	return b, true
}

// --- EFAULT-style user-pointer probing (syscall boundary) ---
//
// Kernel-backed functions do not crash on bad user pointers; the kernel
// copy routines fail and the syscall returns EFAULT. These helpers give
// the simulated syscall layer the same behaviour.

// CopyFromUser reads n bytes without faulting; ok is false if any byte
// is unreadable.
func (p *Process) CopyFromUser(addr cmem.Addr, n int) ([]byte, bool) {
	b, f := p.Mem.Read(addr, n)
	return b, f == nil
}

// CopyToUser writes data without faulting; ok is false on bad memory.
func (p *Process) CopyToUser(addr cmem.Addr, data []byte) bool {
	return p.Mem.Write(addr, data) == nil
}

// StrFromUser reads a NUL-terminated string without faulting.
func (p *Process) StrFromUser(addr cmem.Addr) (string, bool) {
	s, f := p.Mem.CString(addr)
	return s, f == nil
}

// Malloc allocates simulated heap memory, setting errno on exhaustion.
func (p *Process) Malloc(size int) cmem.Addr {
	a, err := p.Mem.Malloc(size)
	if err != nil {
		p.SetErrno(ENOMEM)
		return 0
	}
	return a
}

package csim

import "healers/internal/obs"

// Metrics counts sandboxed-call outcomes and step consumption at the
// Run boundary — the simulated analogue of the parent process tallying
// child exit statuses and timeouts. Attach one to a Process (children
// inherit it across Fork) and every sandboxed call is counted; a nil
// *Metrics on the process disables the accounting entirely.
type Metrics struct {
	Returns   *obs.Counter
	Segfaults *obs.Counter
	Hangs     *obs.Counter
	Aborts    *obs.Counter
	// Steps is the per-call simulated work distribution; hangs land in
	// the top buckets by construction (they exhausted the budget).
	Steps *obs.Histogram
}

// StepBuckets are the default bounds for the per-call step histogram,
// spanning trivial calls up to the default step budget.
func StepBuckets() []int64 {
	return []int64{16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
}

// NewMetrics registers the sandbox instruments on r (nil r yields
// detached instruments, still safe to attach).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Returns:   r.Counter("healers_sandbox_returns_total"),
		Segfaults: r.Counter("healers_sandbox_segfaults_total"),
		Hangs:     r.Counter("healers_sandbox_hangs_total"),
		Aborts:    r.Counter("healers_sandbox_aborts_total"),
		Steps:     r.Histogram("healers_sandbox_steps", StepBuckets()),
	}
}

// record tallies one outcome; called on every Run exit path.
func (m *Metrics) record(out Outcome) {
	if m == nil {
		return
	}
	switch out.Kind {
	case OutcomeReturn:
		m.Returns.Inc()
	case OutcomeSegfault:
		m.Segfaults.Inc()
	case OutcomeHang:
		m.Hangs.Inc()
	case OutcomeAbort:
		m.Aborts.Inc()
	}
	m.Steps.Observe(int64(out.Steps))
}

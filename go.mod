module healers

go 1.22

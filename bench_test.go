// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§3 statistics, Table 1, Figure 6, Table 2) plus the
// ablations DESIGN.md calls out. Regenerate everything with
//
//	go test -bench=. -benchmem
//
// The per-experiment metrics (crash rates, class counts) are attached
// to the benchmark output via ReportMetric so the rows the paper
// reports appear alongside the timing.
package healers_test

import (
	"strings"
	"sync"
	"testing"

	"healers"
	"healers/internal/apps"
	"healers/internal/ballista"
	"healers/internal/clib"
	"healers/internal/cmem"
	"healers/internal/corpus"
	"healers/internal/csim"
	"healers/internal/decl"
	"healers/internal/extract"
	"healers/internal/gens"
	"healers/internal/injector"
	"healers/internal/typesys"
	"healers/internal/wrapper"
)

// shared fixture: the injection campaign is expensive, so benchmarks
// that only need its decls share one run.
var (
	fixtureOnce sync.Once
	fixtureSys  *healers.System
	fixtureCamp *healers.Campaign
)

func fixture(b *testing.B) (*healers.System, *healers.Campaign) {
	b.Helper()
	fixtureOnce.Do(func() {
		sys, err := healers.NewSystem()
		if err != nil {
			panic(err)
		}
		campaign, err := sys.Inject(sys.CrashProne86())
		if err != nil {
			panic(err)
		}
		fixtureSys, fixtureCamp = sys, campaign
	})
	return fixtureSys, fixtureCamp
}

// BenchmarkExtraction regenerates the §3 statistics: prototype
// discovery over the shared object, man pages and header tree.
func BenchmarkExtraction(b *testing.B) {
	lib := clib.New()
	c := corpus.Build(lib)
	var stats extract.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := extract.Run(c)
		if err != nil {
			b.Fatal(err)
		}
		stats = res.Stats
	}
	b.ReportMetric(100*stats.InternalFraction(), "internal-%")
	b.ReportMetric(100*stats.ManCoverage(), "man-coverage-%")
	b.ReportMetric(100*stats.FoundRate(), "prototypes-found-%")
}

// BenchmarkTable1 regenerates Table 1: the full fault-injection
// campaign over the 86 functions and the error-return classification.
func BenchmarkTable1(b *testing.B) {
	sys, _ := fixture(b)
	var tab injector.Table1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		campaign, err := sys.Inject(sys.CrashProne86())
		if err != nil {
			b.Fatal(err)
		}
		tab = campaign.Table1()
	}
	b.ReportMetric(float64(tab.NoReturn), "no-return(8)")
	b.ReportMetric(float64(tab.Consistent), "consistent(39)")
	b.ReportMetric(float64(tab.Inconsistent), "inconsistent(2)")
	b.ReportMetric(float64(tab.NotFound), "not-found(37)")
}

// benchSuite builds the 11,995-test suite once.
var (
	suiteOnce sync.Once
	suiteVal  *healers.Suite
)

func benchSuite(b *testing.B) *healers.Suite {
	b.Helper()
	sys, _ := fixture(b)
	suiteOnce.Do(func() {
		s, err := sys.GenerateSuite()
		if err != nil {
			panic(err)
		}
		suiteVal = s
	})
	return suiteVal
}

// figure6Config runs one bar of Figure 6 per iteration and reports its
// crash percentage and crashing-function count as metrics.
func figure6Config(b *testing.B, config string, decls *healers.DeclSet) {
	sys, _ := fixture(b)
	suite := benchSuite(b)
	var rep *healers.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		template := ballista.NewTemplate()
		factory := func(p *healers.Process) ballista.Caller {
			if decls == nil {
				return sys.Library
			}
			return wrapper.Attach(p, sys.Library, decls, wrapper.DefaultOptions())
		}
		rep = suite.Run(config, template, factory, 0)
	}
	_, _, crashPct := rep.Rates()
	b.ReportMetric(crashPct, "crash-%")
	b.ReportMetric(float64(len(rep.CrashingFuncs())), "crashing-funcs")
}

// BenchmarkFigure6Unwrapped regenerates the first bar of Figure 6
// (paper: 74.18% crash, 77 crashing functions).
func BenchmarkFigure6Unwrapped(b *testing.B) {
	figure6Config(b, "unwrapped", nil)
}

// BenchmarkFigure6FullAuto regenerates the second bar (paper: 0.93%
// crash, 16 crashing functions).
func BenchmarkFigure6FullAuto(b *testing.B) {
	_, campaign := fixture(b)
	figure6Config(b, "full-auto", campaign.Decls())
}

// BenchmarkFigure6SemiAuto regenerates the third bar (paper: 0% crash).
func BenchmarkFigure6SemiAuto(b *testing.B) {
	_, campaign := fixture(b)
	figure6Config(b, "semi-auto", healers.SemiAuto(campaign.Decls()))
}

// BenchmarkTable2 regenerates the Table 2 rows, one application per
// sub-benchmark.
func BenchmarkTable2(b *testing.B) {
	sys, campaign := fixture(b)
	decls := healers.SemiAuto(campaign.Decls())
	for _, profile := range apps.All() {
		b.Run(profile.Name, func(b *testing.B) {
			var m healers.Measurement
			for i := 0; i < b.N; i++ {
				m = apps.Measure(sys.Library, decls, profile)
			}
			b.ReportMetric(m.WrappedPerSec, "wrapped-calls/s")
			b.ReportMetric(100*m.LibShare, "lib-share-%")
			b.ReportMetric(100*m.CheckOverhead, "check-overhead-%")
			b.ReportMetric(100*m.ExecOverhead, "exec-overhead-%")
		})
	}
}

// BenchmarkWrapperPerCall measures the per-call cost the wrapper adds
// to a cheap library function (the microcost behind Table 2).
func BenchmarkWrapperPerCall(b *testing.B) {
	sys, campaign := fixture(b)
	p := csim.NewProcess(nil)
	// The step counter only resets inside a sandboxed Run; raw repeated
	// calls need an effectively unlimited budget.
	p.SetStepBudget(1 << 60)
	w := wrapper.Attach(p, sys.Library, campaign.Decls(), wrapper.DefaultOptions())
	s, _ := p.Mem.MmapRegion(16, cmem.ProtRW)
	p.Mem.WriteCString(s, "benchmark")

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys.Library.Call(p, "strlen", uint64(s))
		}
	})
	b.Run("wrapped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.Call(p, "strlen", uint64(s))
		}
	})
}

// BenchmarkAdaptiveVsStatic is the DESIGN.md ablation: discovering
// asctime's 44-byte requirement with the paper's adaptive guard-page
// growth versus a static grid of candidate sizes. The adaptive probe
// count tracks the actual boundary; the static grid must sample sizes
// blindly and still brackets the answer more coarsely.
func BenchmarkAdaptiveVsStatic(b *testing.B) {
	lib := clib.New()
	fn := lib.MustLookup("asctime")
	template := injector.NewTemplateProcess()

	runAt := func(p *csim.Process, pr *gens.Probe) csim.Outcome {
		args := make([]uint64, 1)
		p.Run(func() uint64 { args[0] = pr.Build(p); return 0 })
		p.ClearErrno()
		return p.Run(func() uint64 { return fn.Impl(p, args) })
	}

	b.Run("adaptive", func(b *testing.B) {
		var calls, found int
		for i := 0; i < b.N; i++ {
			g := gens.NewArrayGen(8192, 256)
			pr := g.ChainProbe(cmem.ProtRead)
			calls = 0
			for {
				child := template.Fork()
				child.SetStepBudget(100_000)
				out := runAt(child, pr)
				calls++
				if out.Kind == csim.OutcomeReturn {
					found = pr.Size
					break
				}
				if out.Fault == nil {
					break
				}
				np := g.Adjust(pr, out.Fault.Addr)
				if np == nil {
					break
				}
				pr = np
			}
		}
		b.ReportMetric(float64(calls), "probes")
		b.ReportMetric(float64(found), "found-size(44)")
	})

	b.Run("static-grid", func(b *testing.B) {
		// A static tester tries a fixed size grid; the finest boundary
		// it can report is the smallest succeeding grid point.
		grid := []int{0, 8, 16, 32, 64, 128, 256, 512, 1024}
		var calls, found int
		for i := 0; i < b.N; i++ {
			g := gens.NewArrayGen(8192, 256)
			calls = 0
			found = 0
			for _, size := range grid {
				pr := gens.SizedProbe(g, size, cmem.ProtRead)
				child := template.Fork()
				child.SetStepBudget(100_000)
				out := runAt(child, pr)
				calls++
				if out.Kind == csim.OutcomeReturn && found == 0 {
					found = size
				}
			}
		}
		b.ReportMetric(float64(calls), "probes")
		b.ReportMetric(float64(found), "found-size(64-not-44)")
	})
}

// BenchmarkStatefulVsStateless is the second ablation: the cost of the
// wrapper's memory check through the allocation table versus stateless
// page probing, for a large heap buffer.
func BenchmarkStatefulVsStateless(b *testing.B) {
	sys, campaign := fixture(b)
	decls := campaign.Decls()

	setup := func(stateless bool) (*csim.Process, *wrapper.Interposer, uint64, uint64) {
		p := csim.NewProcess(nil)
		p.SetStepBudget(1 << 60)
		opts := wrapper.DefaultOptions()
		opts.Stateless = stateless
		w := wrapper.Attach(p, sys.Library, decls, opts)
		dst := w.Call(p, "malloc", 64<<10)
		src, _ := p.Mem.MmapRegion(128, cmem.ProtRW)
		p.Mem.WriteCString(src, "payload for the destination buffer")
		return p, w, dst, uint64(src)
	}

	b.Run("stateful", func(b *testing.B) {
		p, w, dst, src := setup(false)
		for i := 0; i < b.N; i++ {
			w.Call(p, "strcpy", dst, src)
		}
	})
	b.Run("stateless", func(b *testing.B) {
		p, w, dst, src := setup(true)
		for i := 0; i < b.N; i++ {
			w.Call(p, "strcpy", dst, src)
		}
	})
}

// BenchmarkCheckCache is the §7 improvement the paper cites from [3]:
// caching pointer-validity results. Repeated calls on the same FILE
// argument skip re-validation until allocation state changes.
func BenchmarkCheckCache(b *testing.B) {
	sys, campaign := fixture(b)
	decls := campaign.Decls()
	setup := func(cache bool) (*csim.Process, *wrapper.Interposer, uint64) {
		fs := csim.NewFS()
		fs.Create("/bench.txt", []byte(strings.Repeat("data ", 4096)))
		p := csim.NewProcess(fs)
		p.SetStepBudget(1 << 60)
		opts := wrapper.DefaultOptions()
		opts.CacheChecks = cache
		w := wrapper.Attach(p, sys.Library, decls, opts)
		fp := p.Fopen("/bench.txt", "r+")
		return p, w, uint64(fp)
	}
	b.Run("uncached", func(b *testing.B) {
		p, w, fp := setup(false)
		for i := 0; i < b.N; i++ {
			w.Call(p, "fputc", 'x', fp)
		}
	})
	b.Run("cached", func(b *testing.B) {
		p, w, fp := setup(true)
		for i := 0; i < b.N; i++ {
			w.Call(p, "fputc", 'x', fp)
		}
	})
}

// BenchmarkRobustTypeSelection measures the §4.3 selection algorithm
// over the instantiated asctime hierarchy.
func BenchmarkRobustTypeSelection(b *testing.B) {
	sizes := []int{0, 8, 16, 24, 32, 40, 43, 44, 48, 152}
	h := typesys.BuildArrayHierarchy(sizes)
	var cases []typesys.Case
	for _, s := range sizes {
		outcome := typesys.Crash
		if s >= 44 {
			outcome = typesys.Success
		}
		ro, _ := h.Lookup(typesys.NameROnlyFixed(s))
		rw, _ := h.Lookup(typesys.NameRWFixed(s))
		wo, _ := h.Lookup(typesys.NameWOnlyFixed(s))
		cases = append(cases,
			typesys.Case{Fund: ro, Outcome: outcome},
			typesys.Case{Fund: rw, Outcome: outcome},
			typesys.Case{Fund: wo, Outcome: typesys.Crash},
		)
	}
	null, _ := h.Lookup(typesys.TypeNull)
	inv, _ := h.Lookup(typesys.TypeInvalid)
	cases = append(cases,
		typesys.Case{Fund: null, Outcome: typesys.ErrorReturn},
		typesys.Case{Fund: inv, Outcome: typesys.Crash},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RobustType(cases, typesys.RobustOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeclRoundTrip measures Figure 2 XML encode/decode.
func BenchmarkDeclRoundTrip(b *testing.B) {
	_, campaign := fixture(b)
	d := campaign.Results["asctime"].Decl
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := d.EncodeXML()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := decl.UnmarshalXML(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticSeededInjection is the PR's ablation: the full 86-
// function campaign cold versus seeded with the static prediction's
// size/read-only hints. The seeds must not change any robust vector
// (asserted by TestSeededVectorsIdentical in internal/analysis); here
// we quantify what they buy — sandboxed injection calls and wall time.
func BenchmarkStaticSeededInjection(b *testing.B) {
	sys, _ := fixture(b)
	names := sys.CrashProne86()
	pred, err := sys.Predict(names)
	if err != nil {
		b.Fatal(err)
	}
	totalCalls := func(c *healers.Campaign) int {
		var n int
		for _, name := range c.Order {
			n += c.Results[name].Calls
		}
		return n
	}

	var coldCalls, seededCalls int
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			campaign, err := sys.InjectWith(names, injector.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			coldCalls = totalCalls(campaign)
		}
		b.ReportMetric(float64(coldCalls), "inject-calls")
	})
	b.Run("seeded", func(b *testing.B) {
		cfg := injector.DefaultConfig()
		cfg.Seeds = pred.Seeds()
		for i := 0; i < b.N; i++ {
			campaign, err := sys.InjectWith(names, cfg)
			if err != nil {
				b.Fatal(err)
			}
			seededCalls = totalCalls(campaign)
		}
		b.ReportMetric(float64(seededCalls), "inject-calls")
		if coldCalls > 0 {
			b.ReportMetric(100*float64(coldCalls-seededCalls)/float64(coldCalls), "calls-saved-%")
		}
	})
}
